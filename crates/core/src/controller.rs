//! The ORAM controller: Path ORAM access protocol, the PS-ORAM
//! crash-consistent variants, crash injection and recovery.

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use psoram_crypto::{Aes128, CryptoLatencyModel, CtrCipher, Hash128};
use psoram_nvm::{
    AccessKind, FaultClass, FaultConfig, FaultStats, NvmConfig, NvmController, OnChipNvmModel,
    ReadFault, WpqEntry, CORE_CYCLES_PER_MEM_CYCLE,
};
use psoram_obsv::{Event, Phase, Tap};

use crate::auth::{AuthTags, FreshnessStats, FreshnessVerdict, UnitHistory};
use crate::block::Block;
use crate::bucket::Bucket;
use crate::crash::{CrashPoint, CrashReport, RecoveryError, RecoveryReport};
use crate::engine::{
    to_core, to_mem, AccessScratch, CommitLedger, PersistEngine, RoundDamage, WearReadOutcome,
};
use crate::eviction::{order_for_small_wpq, plan_eviction, SlotWrite};
use crate::integrity::{bucket_digest, IntegrityTree};
use crate::posmap::{PosMap, TempPosMap};
use crate::recursive::RecursivePosMap;
use crate::security::AccessRecorder;
use crate::stash::Stash;
use crate::stats::OramStats;
use crate::tree::OramTree;
use crate::types::{BlockAddr, Leaf, OramConfig, OramError};

pub use crate::engine::ProtocolVariant;
pub use crate::types::{AccessOutcome, Op};

/// A posmap entry queued in the PosMap WPQ.
type PosMapFlush = (BlockAddr, Leaf);

/// A crash-consistent (or deliberately not) Path ORAM controller over a
/// simulated NVM.
///
/// One controller owns the full stack below the LLC: the ORAM tree in NVM,
/// the stash, the (temporary) PosMaps, the persistence domain, and the
/// encryption engine. The [`ProtocolVariant`] selects which of the paper's
/// designs the controller implements.
///
/// # Examples
///
/// ```
/// use psoram_core::{BlockAddr, OramConfig, PathOram, ProtocolVariant};
///
/// let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 7);
/// oram.write(BlockAddr(3), vec![0xAB; 8]).unwrap();
/// assert_eq!(oram.read(BlockAddr(3)).unwrap(), vec![0xAB; 8]);
/// ```
#[derive(Debug)]
pub struct PathOram {
    config: OramConfig,
    variant: ProtocolVariant,
    nvm: NvmController,
    tree: OramTree,
    stash: Stash,
    posmap: PosMap,
    temp: TempPosMap,
    /// The shared persist-round engine: WPQ rounds, crash arming &
    /// scheduling, and the crash/recovery state machine.
    engine: PersistEngine<SlotWrite, PosMapFlush>,
    recursion: Option<RecursivePosMap>,
    cipher: CtrCipher,
    crypto_lat: CryptoLatencyModel,
    onchip: OnChipNvmModel,
    onchip_parallelism: u64,
    posmap_base: u64,
    /// Base of the reserved NVM stash-snapshot region (Rcr-PS-ORAM).
    stash_region_base: u64,
    /// Core cycles the controller frontend (decrypt/verify/stash port)
    /// needs per 64 B block. Provisioned for single-channel bandwidth
    /// (8 memory cycles/block), it becomes the bottleneck as channels are
    /// added — the paper's sub-linear channel scaling (§5.2.3).
    frontend_cycles_per_block: u64,
    /// Core cycle until which the frontend pipeline is busy.
    frontend_free: u64,
    /// Levels `0..top_cache_levels` of the tree are mirrored in a fast
    /// volatile buffer (DRAM/on-chip), the paper's §4.5 hybrid-memory
    /// direction: path reads skip the NVM for those buckets, while writes
    /// stay write-through so crash consistency is untouched.
    top_cache_levels: u32,
    /// Optional Merkle protection over the data tree (Triad-NVM-style
    /// substrate the paper assumes); root updates ride the eviction
    /// commits, so they stay crash consistent.
    integrity: Option<IntegrityTree>,
    /// Path whose digests must be refreshed once the in-flight eviction's
    /// writes have (partially, on a crash) reached the NVM.
    pending_integrity_path: Option<Leaf>,
    rng: StdRng,
    clock: u64,
    stats: OramStats,
    /// Written-vs-committed value ledgers (the recoverability oracle).
    ledger: CommitLedger,
    touched: HashSet<u64>,
    recorder: Option<AccessRecorder>,
    /// Observability tap (distinct from the security `recorder` above):
    /// phase/round/WPQ/NVM events, shared with the engine and the NVM.
    obsv: Tap,
    encrypt_payloads: bool,
    iv: u64,
    /// Monotonic per-block freshness source (see [`BlockHeader::seq`]).
    seq_counter: u64,
    /// On-chip CMAC tag store over NVM-resident state. Present only when
    /// device faults are enabled on a hardened (WPQ) design.
    auth: Option<AuthTags>,
    /// The freshness adversary's snapshot store: the previous version of
    /// every persist unit, recorded on overwrite. Present in device-fault
    /// mode on *every* design (it is adversary state, not defense state).
    history: Option<UnitHistory>,
    /// Fetch-path freshness counters: stale serves injected on the read
    /// wire and how many the hardened verifier caught.
    freshness: FreshnessStats,
    /// Persist units of the most recently applied round — the tree slots
    /// whose media programming an untimely power failure interrupts.
    last_round_slots: Vec<(u64, usize)>,
    /// PosMap entries of the most recently applied round (same role).
    last_round_posmap: Vec<BlockAddr>,
    /// Reused per-access buffers (path addresses, fetched blocks): the
    /// steady-state access loop performs no heap allocation for these.
    scratch: AccessScratch,
}

impl PathOram {
    /// Creates a controller with a single-channel paper-default PCM memory.
    pub fn new(config: OramConfig, variant: ProtocolVariant, seed: u64) -> Self {
        Self::with_nvm(config, variant, NvmConfig::paper_pcm(1), seed)
    }

    /// Creates a controller over an explicit NVM configuration (e.g. the
    /// multi-channel systems of Figure 7).
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`OramConfig::validate`].
    pub fn with_nvm(
        config: OramConfig,
        variant: ProtocolVariant,
        nvm_config: NvmConfig,
        seed: u64,
    ) -> Self {
        config.validate();
        let tree = OramTree::new(&config);
        let posmap_base = tree.region_bytes().next_multiple_of(1 << 20);
        let entry_region = config.capacity_blocks() * 8;
        let recursion_base = (posmap_base + entry_region).next_multiple_of(1 << 20);
        let recursion = if variant.is_recursive() {
            Some(RecursivePosMap::new(
                &config,
                recursion_base,
                128,
                seed ^ 0x5EC0,
            ))
        } else {
            None
        };
        let recursion_end =
            recursion_base + recursion.as_ref().map_or(0, RecursivePosMap::region_bytes);
        let stash_region_base = recursion_end.next_multiple_of(1 << 20);
        let onchip = variant
            .onchip_tech()
            .map(OnChipNvmModel::for_tech)
            .unwrap_or_else(OnChipNvmModel::sram);
        let key: [u8; 16] = {
            let mut k = [0u8; 16];
            k[..8].copy_from_slice(&seed.to_le_bytes());
            k[8..].copy_from_slice(&(!seed).to_le_bytes());
            k
        };
        PathOram {
            stash: Stash::new(config.stash_capacity),
            posmap: PosMap::new(config.num_leaves(), seed ^ 0xFACE),
            temp: TempPosMap::new(config.temp_posmap_capacity),
            engine: PersistEngine::new(config.data_wpq_capacity, config.posmap_wpq_capacity),
            recursion,
            cipher: CtrCipher::new(Aes128::new(&key)),
            crypto_lat: CryptoLatencyModel::paper_default(),
            onchip,
            // Effective parallelism of the on-chip NVM buffer array
            // (FullNVM designs); calibrated against Figure 5(a).
            onchip_parallelism: 5,
            posmap_base,
            stash_region_base,
            // One block per 8 memory cycles — the frontend is provisioned
            // for a single channel's burst bandwidth, which is what makes
            // 2->4 channel scaling saturate (Figure 7, §5.2.3).
            frontend_cycles_per_block: 8 * CORE_CYCLES_PER_MEM_CYCLE,
            frontend_free: 0,
            top_cache_levels: 0,
            integrity: None,
            pending_integrity_path: None,
            rng: StdRng::seed_from_u64(seed),
            clock: 0,
            stats: OramStats::default(),
            ledger: CommitLedger::new(),
            touched: HashSet::new(),
            recorder: None,
            obsv: Tap::detached(),
            encrypt_payloads: true,
            iv: 0,
            seq_counter: 0,
            auth: None,
            history: None,
            freshness: FreshnessStats::default(),
            last_round_slots: Vec::new(),
            last_round_posmap: Vec::new(),
            scratch: AccessScratch::default(),
            nvm: NvmController::new(nvm_config),
            tree,
            config,
            variant,
        }
    }

    /// The protocol variant this controller implements.
    pub fn variant(&self) -> ProtocolVariant {
        self.variant
    }

    /// The ORAM geometry.
    pub fn config(&self) -> &OramConfig {
        &self.config
    }

    /// Controller statistics. The crash/recovery/stall counters live in
    /// the shared persist engine and are merged into the snapshot here.
    pub fn stats(&self) -> OramStats {
        let mut s = self.stats;
        let e = self.engine.stats();
        s.crashes = e.crashes;
        s.recoveries = e.recoveries;
        s.recovery_failures = e.recovery_failures;
        s.wpq_stalls = e.wpq_stalls;
        s
    }

    /// Accumulated statistics of the engine's (data, PosMap) WPQs.
    pub fn wpq_stats(&self) -> (psoram_nvm::WpqStats, psoram_nvm::WpqStats) {
        self.engine.wpq_stats()
    }

    /// NVM traffic statistics.
    pub fn nvm_stats(&self) -> psoram_nvm::NvmStats {
        *self.nvm.stats()
    }

    /// The underlying NVM controller (timing state, wear map, ...).
    pub fn nvm(&self) -> &NvmController {
        &self.nvm
    }

    /// `true` if a primary copy of `addr` currently sits in the stash.
    pub fn stash_contains(&self, addr: BlockAddr) -> bool {
        self.stash.contains(addr)
    }

    /// Current stash occupancy (including backups).
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// High-water mark of stash occupancy.
    pub fn stash_max_occupancy(&self) -> usize {
        self.stash.max_occupancy()
    }

    /// The controller's core-cycle clock (advanced by `read`/`write`).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Wires an observability tap through the whole controller stack:
    /// access/phase events here, round and WPQ events in the persist
    /// engine, and bank-level events in the NVM controller. The tap only
    /// observes — simulated timing and state are unchanged (enforced by
    /// the paired-run identity tests).
    pub fn set_obsv_tap(&mut self, tap: Tap) {
        self.engine.set_tap(tap.clone());
        self.nvm.set_tap(tap.clone());
        self.obsv = tap;
    }

    /// Convenience: builds a [`Tap`] over `recorder` and wires it in via
    /// [`PathOram::set_obsv_tap`].
    pub fn attach_obsv_recorder(&mut self, recorder: std::sync::Arc<dyn psoram_obsv::Recorder>) {
        self.set_obsv_tap(Tap::attached(recorder));
    }

    /// Enables/disables functional payload encryption (timing is charged
    /// either way). On by default; large sweeps may disable it to trade
    /// fidelity for speed.
    pub fn set_payload_encryption(&mut self, on: bool) {
        self.encrypt_payloads = on;
    }

    /// Overrides the controller-frontend throughput (core cycles per 64 B
    /// block); used by ablation studies. See the field documentation for
    /// the calibrated default.
    pub fn set_frontend_cycles_per_block(&mut self, cycles: u64) {
        self.frontend_cycles_per_block = cycles;
    }

    /// Mirrors the top `levels` of the tree in a fast volatile buffer
    /// (hybrid DRAM+NVM, the paper's §4.5 future work): path reads skip
    /// the NVM for those buckets; writes remain write-through, so crash
    /// consistency is preserved and a power failure merely cools the
    /// cache.
    ///
    /// # Panics
    ///
    /// Panics if `levels` exceeds the tree height.
    pub fn set_top_cache_levels(&mut self, levels: u32) {
        assert!(
            levels <= self.config.levels + 1,
            "cache cannot exceed the tree"
        );
        self.top_cache_levels = levels;
    }

    /// Enables Merkle integrity protection over the data tree (the
    /// Triad-NVM/SuperMem-style substrate the paper assumes): every path
    /// read is verified against a root held in the persistence domain, and
    /// root updates commit together with the eviction writes.
    pub fn enable_integrity(&mut self) {
        let default = bucket_digest(&Bucket::new(self.config.bucket_slots));
        let mut tree = IntegrityTree::new(self.config.levels, default);
        // Fold in whatever already exists (enabling mid-run is allowed).
        let updates: Vec<(u64, psoram_crypto::Digest)> = (0..self.tree.num_buckets())
            .filter(|&i| !self.tree.bucket(i).is_empty())
            .map(|i| (i, bucket_digest(&self.tree.bucket(i))))
            .collect();
        tree.update_buckets(&updates);
        self.integrity = Some(tree);
    }

    /// `true` when integrity protection is active.
    pub fn integrity_enabled(&self) -> bool {
        self.integrity.is_some()
    }

    /// Recomputes and installs the digests of every bucket on `leaf`'s
    /// path from the current NVM state (post-commit refresh).
    fn refresh_integrity_path(&mut self, leaf: Leaf) {
        if self.integrity.is_none() {
            return;
        }
        let updates: Vec<(u64, psoram_crypto::Digest)> = self
            .tree
            .path_indices(leaf)
            .into_iter()
            .map(|idx| (idx, bucket_digest(&self.tree.bucket(idx))))
            .collect();
        if let Some(integrity) = self.integrity.as_mut() {
            integrity.update_buckets(&updates);
        }
    }

    /// Test/attack hook: corrupts one byte of the first real block found on
    /// `leaf`'s path in the NVM image, bypassing the controller. Returns
    /// `true` if something was corrupted.
    pub fn corrupt_path_for_testing(&mut self, leaf: Leaf) -> bool {
        self.tree.corrupt_first_real_block(leaf)
    }

    /// Buffer bytes required by the configured top-of-tree cache.
    pub fn top_cache_bytes(&self) -> u64 {
        ((1u64 << self.top_cache_levels) - 1)
            * self.config.bucket_slots as u64
            * self.config.block_bytes as u64
    }

    /// Starts recording the observable access pattern for security analysis.
    pub fn enable_recording(&mut self) {
        self.recorder = Some(AccessRecorder::new());
    }

    /// Returns the recorded access pattern, if recording was enabled.
    pub fn recorder(&self) -> Option<&AccessRecorder> {
        self.recorder.as_ref()
    }

    /// Makes the WPQ/NVM backend adversarial: installs a seeded
    /// [`FaultPlan`](psoram_nvm::FaultPlan) that injects torn flushes,
    /// lost/duplicated drainer signals, bit rot, and transient read errors.
    ///
    /// Hardened (WPQ) designs additionally arm the integrity layer: CMAC
    /// tags over every tree slot and persisted PosMap entry, sealed WPQ
    /// batch frames, and a rolling seal over the temporary PosMap —
    /// recovery then detects, classifies, and repairs the damage.
    /// Non-WPQ baselines get the same faults with no defenses, so the
    /// differential campaigns keep their detection power.
    pub fn enable_device_faults(&mut self, seed: u64, cfg: FaultConfig) {
        self.engine.install_fault_plan(seed, cfg);
        // The replay adversary's snapshot store goes on every design —
        // baselines are replayed too, they just cannot tell.
        self.history = Some(UnitHistory::default());
        if !self.variant.uses_wpq() {
            return;
        }
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&seed.to_le_bytes());
        key[8..].copy_from_slice(&seed.rotate_left(17).to_le_bytes());
        key[0] ^= 0xA7;
        let mut auth = AuthTags::new(&key);
        // Retro-tag whatever already sits on media: everything written
        // before hardening is trusted as-is and covered from here on.
        for idx in self.tree.materialized_indices() {
            let bucket = self.tree.bucket(idx);
            for slot in 0..bucket.num_slots() {
                auth.record_slot(idx, slot, bucket.slot(slot));
            }
        }
        for (a, l) in self.posmap.persisted_sorted() {
            auth.record_posmap(a, l);
        }
        auth.seal_temp(&self.temp.entries_sorted());
        self.engine.seal_frames(&key);
        // Anchor the counter-tree root in the persistence domain before
        // the first adversarial round.
        self.engine.persist_root(auth.root());
        self.auth = Some(auth);
    }

    /// Ground-truth injection counters of the installed fault plan, if any.
    pub fn device_fault_stats(&self) -> Option<FaultStats> {
        self.engine.fault_stats()
    }

    /// Arms the endurance adversary over the tree's NVM line region:
    /// per-line write accounting (seeded cell budgets around
    /// `cfg.mean_endurance`) plus the chosen wear-leveling scheme. Gap
    /// moves and retirements stage against the durable mapping and only
    /// become durable in the persist engine's commit round, so a crash
    /// mid-gap-move or mid-retirement rolls back to one consistent
    /// mapping. Wear-induced faults additionally require an installed
    /// device fault plan with a wear arm ([`FaultConfig::wear_only`] or
    /// [`FaultConfig::wear_mix`]); without one this is accounting only.
    pub fn enable_wear(&mut self, seed: u64, cfg: psoram_nvm::WearConfig) {
        let bytes = self.tree.base_addr() + self.tree.region_bytes();
        let lines = bytes.div_ceil(psoram_nvm::WEAR_LINE_BYTES).max(1);
        self.engine.enable_wear(seed, lines, cfg);
    }

    /// Wear/leveling counters of the armed endurance adversary, if any.
    pub fn wear_stats(&self) -> Option<psoram_nvm::WearStats> {
        self.engine.wear_stats()
    }

    /// The endurance adversary's engine (mapping, per-line writes), if armed.
    pub fn wear_engine(&self) -> Option<&psoram_nvm::WearEngine> {
        self.engine.wear_engine()
    }

    /// Fetch-path freshness counters: stale units the adversary served on
    /// the read wire, and how many the hardened verifier detected.
    pub fn freshness_stats(&self) -> FreshnessStats {
        self.freshness
    }

    /// The latched fail-safe class, if the controller is poisoned.
    pub fn poisoned(&self) -> Option<FaultClass> {
        self.engine.poisoned()
    }

    /// A deterministic digest over the controller's recoverable state:
    /// the materialized tree, the persisted PosMap, and the committed
    /// ledger. Two controllers in byte-identical recoverable state hash
    /// equal — the double-recover idempotency regression tests rely on it.
    pub fn state_digest(&self) -> u128 {
        let mut bytes = Vec::new();
        for idx in self.tree.materialized_indices() {
            let bucket = self.tree.bucket(idx);
            bytes.extend_from_slice(&idx.to_le_bytes());
            for slot in 0..bucket.num_slots() {
                match bucket.slot(slot) {
                    None => bytes.push(0),
                    Some(b) => {
                        bytes.push(1);
                        bytes.extend_from_slice(&b.header.addr.0.to_le_bytes());
                        bytes.extend_from_slice(&b.header.leaf.0.to_le_bytes());
                        bytes.extend_from_slice(&b.header.seq.to_le_bytes());
                        bytes.push(b.is_backup as u8);
                        bytes.extend_from_slice(&b.payload);
                    }
                }
            }
        }
        for (a, l) in self.posmap.persisted_sorted() {
            bytes.extend_from_slice(&a.to_le_bytes());
            bytes.extend_from_slice(&l.to_le_bytes());
        }
        let mut committed: Vec<(u64, &Vec<u8>)> = self.ledger.committed_iter().collect();
        committed.sort_unstable_by_key(|&(a, _)| a);
        for (a, v) in committed {
            bytes.extend_from_slice(&a.to_le_bytes());
            bytes.extend_from_slice(v);
        }
        // Wear mode folds the durable line mapping in; with wear off the
        // digest is byte-for-byte what pre-endurance builds computed.
        if let Some(d) = self.engine.wear_digest() {
            bytes.extend_from_slice(&d.to_le_bytes());
        }
        u128::from_le_bytes(Hash128::new().digest(&bytes))
    }

    crate::engine::impl_crash_controls!();

    /// Reads block `addr` at the controller's own clock.
    ///
    /// # Errors
    ///
    /// Propagates any [`OramError`] from [`PathOram::access_at`].
    pub fn read(&mut self, addr: BlockAddr) -> Result<Vec<u8>, OramError> {
        let arrival = self.clock;
        let out = self.access_at(Op::Read, addr, None, arrival)?;
        self.clock = out.complete_cycle;
        Ok(out.value)
    }

    /// Writes `data` to block `addr` at the controller's own clock.
    ///
    /// # Errors
    ///
    /// Propagates any [`OramError`] from [`PathOram::access_at`].
    pub fn write(&mut self, addr: BlockAddr, data: Vec<u8>) -> Result<(), OramError> {
        let arrival = self.clock;
        let out = self.access_at(Op::Write, addr, Some(data), arrival)?;
        self.clock = out.complete_cycle;
        Ok(())
    }

    fn onchip_batch_cycles(&self, ops: u64, per_op: u64) -> u64 {
        (ops * per_op).div_ceil(self.onchip_parallelism)
    }

    /// Streams `n_blocks` through the controller frontend pipeline starting
    /// no earlier than core cycle `t`; returns the frontend drain cycle.
    fn frontend_process(&mut self, n_blocks: u64, t: u64) -> u64 {
        let done = t.max(self.frontend_free) + n_blocks * self.frontend_cycles_per_block;
        self.frontend_free = done;
        done
    }

    /// Current-view posmap lookup: temporary PosMap first (PS variants),
    /// then the main map.
    fn lookup(&self, addr: BlockAddr) -> Leaf {
        self.temp.get(addr).unwrap_or_else(|| self.posmap.get(addr))
    }

    fn fresh_iv(&mut self) -> u64 {
        self.iv += 1;
        self.iv
    }

    fn encrypt_for_tree(&mut self, block: &mut Block) {
        let iv = self.fresh_iv();
        block.header.iv2 = iv;
        if self.encrypt_payloads {
            self.cipher.apply_keystream(iv as u128, &mut block.payload);
        }
    }

    fn decrypt_from_tree(&self, block: &mut Block) {
        if self.encrypt_payloads {
            self.cipher
                .apply_keystream(block.header.iv2 as u128, &mut block.payload);
        }
    }

    /// Performs one ORAM access arriving at core cycle `arrival`.
    ///
    /// # Errors
    ///
    /// * [`OramError::Crashed`] — an injected crash fired (call
    ///   [`PathOram::recover`]).
    /// * [`OramError::AddressOutOfRange`] / [`OramError::PayloadSize`] —
    ///   invalid request.
    /// * [`OramError::StashOverflow`] / [`OramError::TempPosMapOverflow`] —
    ///   capacity exhaustion (statistically negligible at paper sizing).
    pub fn access_at(
        &mut self,
        op: Op,
        addr: BlockAddr,
        data: Option<Vec<u8>>,
        arrival: u64,
    ) -> Result<AccessOutcome, OramError> {
        self.engine.begin_attempt()?;
        if addr.0 >= self.config.capacity_blocks() {
            return Err(OramError::AddressOutOfRange {
                addr,
                capacity: self.config.capacity_blocks(),
            });
        }
        if let Some(d) = &data {
            if d.len() != self.config.payload_bytes {
                return Err(OramError::PayloadSize {
                    expected: self.config.payload_bytes,
                    got: d.len(),
                });
            }
        }

        self.stats.accesses += 1;
        match op {
            Op::Read => self.stats.reads += 1,
            Op::Write => self.stats.writes += 1,
        }
        self.touched.insert(addr.0);

        let access_index = self.stats.accesses - 1;
        self.obsv.set_now(arrival);
        self.obsv.emit(|| Event::AccessStart {
            index: access_index,
            cycle: arrival,
        });

        let mut t = arrival;

        // ── Step ① Check stash ─────────────────────────────────────────
        t += self.onchip.read_cycles; // one content-addressable lookup
        self.stats.onchip_nvm_reads += u64::from(self.variant.onchip_tech().is_some());
        let stash_hit = self.stash.contains(addr);
        if stash_hit {
            self.stats.stash_hits += 1;
        }
        self.obsv.set_now(t);
        self.obsv.emit(|| Event::Phase {
            phase: Phase::CheckStash,
            start: arrival,
            end: t,
        });
        self.maybe_crash(CrashPoint::AfterCheckStash)?;

        // ── Step ② Access PosMap (+ backup label) ──────────────────────
        let old_leaf = self.lookup(addr);
        let new_leaf = Leaf(self.rng.gen_range(0..self.config.num_leaves()));
        let t_before_posmap = t;
        t = self.step2_update_posmap(addr, new_leaf, t)?;
        self.obsv.set_now(t);
        self.obsv.emit(|| Event::Phase {
            phase: Phase::PosMap,
            start: t_before_posmap,
            end: t,
        });
        self.maybe_crash(CrashPoint::AfterAccessPosMap)?;

        // ── Step ③ Load path ───────────────────────────────────────────
        let t_before_path = t;
        let (mut live_old, t_after_read) = self.step3_load_path(addr, old_leaf, t)?;
        t = t_after_read;
        self.obsv.set_now(t);
        self.obsv.emit(|| Event::Phase {
            phase: Phase::LoadPath,
            start: t_before_path,
            end: t,
        });
        self.maybe_crash(CrashPoint::AfterLoadPath)?;

        // ── Step ④ Update stash + backup data ──────────────────────────
        self.seq_counter += 1;
        let seq = self.seq_counter;
        if self.stash.get(addr).is_none() {
            // Fresh block, never written: materialize zeros.
            let mut block = Block::new(addr, new_leaf, vec![0u8; self.config.payload_bytes]);
            block.header.seq = seq;
            self.stash.insert(block)?;
        } else {
            let primary = self.stash.get_mut(addr).ok_or(OramError::Invariant {
                context: "stash primary present after path load",
            })?;
            primary.header.leaf = new_leaf;
            primary.header.seq = seq;
        }
        if let Some(d) = data {
            self.stash
                .get_mut(addr)
                .ok_or(OramError::Invariant {
                    context: "stash primary present after update",
                })?
                .payload = d;
        }
        let value = self
            .stash
            .get(addr)
            .ok_or(OramError::Invariant {
                context: "stash primary present after update",
            })?
            .payload
            .clone();
        self.ledger.note_written(addr.0, value.clone());
        t += 2; // header update + (possible) backup copy, pipelined SRAM ops
        let value_ready = t;
        self.obsv.set_now(t);
        self.obsv.emit(|| Event::Phase {
            phase: Phase::UpdateStash,
            start: t_after_read,
            end: t,
        });
        self.obsv.emit(|| Event::AccessEnd {
            index: access_index,
            cycle: value_ready,
        });
        self.maybe_crash(CrashPoint::AfterUpdateStash)?;

        // ── Step ⑤ Eviction ────────────────────────────────────────────
        self.pending_integrity_path = Some(old_leaf);
        let eviction_complete = self.step5_evict(old_leaf, &mut live_old, t)?;
        self.obsv.emit(|| Event::Phase {
            phase: Phase::Eviction,
            start: value_ready,
            end: eviction_complete,
        });
        // Root update rides the commit: refresh digests over what actually
        // reached the NVM.
        self.refresh_integrity_path(old_leaf);
        self.pending_integrity_path = None;
        self.maybe_crash(CrashPoint::AfterEviction)?;

        if let Some(rec) = &mut self.recorder {
            rec.record(old_leaf, self.config.path_slots());
        }
        if self.variant.stash_durable() {
            // FullNVM: stash and PosMap are non-volatile, so a completed
            // access is durable (atomicity within an access is the gap the
            // crash tests expose).
            self.ledger
                .commit_if_fresh(addr.0, self.seq_counter, value.clone());
        }
        self.stats.total_access_cycles += value_ready - arrival;

        Ok(AccessOutcome {
            value,
            complete_cycle: value_ready,
            eviction_complete_cycle: eviction_complete,
        })
    }

    /// Step ②: per-variant PosMap handling. Returns the advanced clock.
    fn step2_update_posmap(
        &mut self,
        addr: BlockAddr,
        new_leaf: Leaf,
        mut t: u64,
    ) -> Result<u64, OramError> {
        match self.variant {
            ProtocolVariant::Baseline => {
                t += 2; // SRAM read + write
                self.posmap.set(addr, new_leaf);
            }
            ProtocolVariant::FullNvm | ProtocolVariant::FullNvmStt => {
                t += self.onchip.read_cycles + self.onchip.write_cycles;
                self.stats.onchip_nvm_reads += 1;
                self.stats.onchip_nvm_writes += 1;
                // On-chip NVM PosMap: the update is durable immediately,
                // but not atomic with the data movement (the paper's point).
                self.posmap.persist(addr, new_leaf);
            }
            ProtocolVariant::NaivePsOram | ProtocolVariant::PsOram => {
                t += 2; // SRAM read + temporary-PosMap insert
                self.temp.insert(addr, new_leaf)?;
            }
            ProtocolVariant::RcrBaseline => {
                t = self.recursive_posmap_walk(addr, t)?;
                if self.history.is_some() {
                    // Snapshot the entry the persist below overwrites: the
                    // replay adversary's raw material.
                    let prev = self.posmap.persisted_get(addr);
                    if let Some(h) = self.history.as_mut() {
                        h.note_posmap(addr.0, prev, None);
                    }
                }
                // Written back to untrusted NVM on every access: durable now.
                self.posmap.persist(addr, new_leaf);
                self.stats.posmap_entry_writes += 1;
                if self.engine.device_mode() {
                    // This entry is the media programming a crash interrupts.
                    self.last_round_posmap.clear();
                    self.last_round_posmap.push(addr);
                }
            }
            ProtocolVariant::RcrPsOram => {
                t = self.recursive_posmap_walk(addr, t)?;
                // The new label is backed up in the temporary PosMap and
                // reaches the posmap tree atomically at eviction commit.
                self.temp.insert(addr, new_leaf)?;
            }
        }
        if let Some(auth) = &mut self.auth {
            auth.seal_temp(&self.temp.entries_sorted());
        }
        Ok(t)
    }

    /// Walks the recursive PosMap trees, issuing their path reads/writes to
    /// the NVM. Returns the advanced clock.
    fn recursive_posmap_walk(&mut self, addr: BlockAddr, mut t: u64) -> Result<u64, OramError> {
        let acc = self
            .recursion
            .as_mut()
            .ok_or(OramError::Invariant {
                context: "recursive variant carries a recursion model",
            })?
            .access(addr);
        if acc.plb_hit {
            self.stats.plb_hits += 1;
        } else {
            self.stats.plb_full_misses += 1;
        }
        for (reads, writes) in acc.reads.iter().zip(acc.writes.iter()) {
            let fe = self.frontend_process(reads.len() as u64, t);
            let done = self
                .nvm
                .access_batch(reads.iter().copied(), AccessKind::Read, to_mem(t));
            t = (to_core(done) + self.crypto_lat.decrypt_overlapped_cycles()).max(fe);
            self.stats.recursion_reads += reads.len() as u64;
            let fe = self.frontend_process(writes.len() as u64, t);
            let done = self
                .nvm
                .access_batch(writes.iter().copied(), AccessKind::Write, to_mem(t));
            t = to_core(done).max(fe);
            self.stats.recursion_writes += writes.len() as u64;
        }
        Ok(t)
    }

    /// Step ③: fetch the path, classify copies, fill the stash.
    ///
    /// Returns the live-copy map (slot → address whose recoverable copy
    /// occupies it) used by the eviction's ordering logic, and the clock.
    #[allow(clippy::type_complexity)]
    fn step3_load_path(
        &mut self,
        target: BlockAddr,
        leaf: Leaf,
        t: u64,
    ) -> Result<(HashMap<(u64, usize), BlockAddr>, u64), OramError> {
        // Transient media read errors (device-fault mode): bounded retry
        // with exponential backoff re-issues the path load; a stuck line
        // exhausts the retries and latches the fail-safe poisoned state.
        let mut t = t;
        match self.engine.read_fault() {
            ReadFault::None => {}
            ReadFault::Transient { attempts } => {
                for k in 0..attempts {
                    t += 400 << k;
                }
                self.obsv.set_now(t);
                self.obsv.emit(|| Event::FaultDetected {
                    kind: psoram_obsv::DeviceFaultKind::TransientRead,
                    units: u64::from(attempts),
                    cycle: t,
                });
            }
            ReadFault::Stuck => {
                self.engine.poison(FaultClass::TransientRead);
                return Err(OramError::Poisoned {
                    class: FaultClass::TransientRead,
                });
            }
        }
        let path = self.tree.path_indices(leaf);
        // Freshness adversary on the read wire (device-fault mode): the
        // device may serve one path slot from an authentic-but-stale
        // snapshot it recorded before the last overwrite. The draw always
        // consumes plan entropy (schedule invariance); it only lands when
        // a path slot actually has recorded history.
        let mut serve_stale: Option<crate::auth::StaleServe> = None;
        if let Some(pick) = self.engine.read_replay() {
            if let Some(history) = self.history.as_ref() {
                let mut candidates: Vec<(u64, usize)> = Vec::new();
                for &bucket in &path {
                    for slot in 0..self.config.bucket_slots {
                        if history.slot(bucket, slot).is_some() {
                            candidates.push((bucket, slot));
                        }
                    }
                }
                if !candidates.is_empty() {
                    let (bucket, slot) = candidates[(pick % candidates.len() as u64) as usize];
                    if let Some((content, meta)) = history.slot(bucket, slot) {
                        serve_stale = Some(((bucket, slot), content.clone(), *meta));
                    }
                }
            }
            if serve_stale.is_some() {
                self.engine.confirm_read_replay();
                self.freshness.stale_serves += 1;
            }
        }
        // Merkle verification of the fetched path (when enabled): the
        // digests of the bytes coming off the bus must chain to the
        // persisted root.
        if let Some(int) = &self.integrity {
            let observed: Vec<(u64, psoram_crypto::Digest)> = path
                .iter()
                .map(|&idx| (idx, bucket_digest(&self.tree.bucket(idx))))
                .collect();
            int.verify_path(leaf, &observed)
                .map_err(|v| OramError::IntegrityViolation { leaf: v.leaf })?;
        }
        let mut read_addrs = std::mem::take(&mut self.scratch.read_addrs);
        read_addrs.clear();
        for (depth, &bucket) in path.iter().enumerate() {
            if (depth as u32) < self.top_cache_levels {
                // Bucket mirrored in the fast volatile buffer: no NVM read.
                continue;
            }
            for slot in 0..self.config.bucket_slots {
                read_addrs.push(self.tree.slot_nvm_addr(bucket, slot));
            }
        }
        let frontend_done = self.frontend_process(self.config.path_slots() as u64, t);
        let done = self
            .nvm
            .access_batch(read_addrs.iter().copied(), AccessKind::Read, to_mem(t));
        self.scratch.read_addrs = read_addrs;
        let mut t =
            (to_core(done) + self.crypto_lat.decrypt_overlapped_cycles()).max(frontend_done);

        // Endurance adversary (wear mode): the hottest line on the fetched
        // path may fail with probability scaling in its consumed write
        // budget. Drift failures retry like transient media glitches; a
        // stuck conviction retires the line onto a spare and repairs it
        // from the redundant copy, or — spare pool dry — latches the
        // fail-safe poisoned state rather than serve stuck bits.
        match self.engine.wear_read_fault(&self.scratch.read_addrs) {
            WearReadOutcome::None => {}
            WearReadOutcome::Transient { attempts } => {
                for k in 0..attempts {
                    t += 400 << k;
                }
                self.obsv.set_now(t);
                self.obsv.emit(|| Event::FaultDetected {
                    kind: psoram_obsv::DeviceFaultKind::WearOut,
                    units: u64::from(attempts),
                    cycle: t,
                });
            }
            WearReadOutcome::Retired { line, spare } => {
                // Repair-from-redundant-copy onto the spare: one read and
                // one write round trip on top of the detection.
                t += 800;
                self.obsv.set_now(t);
                self.obsv.emit(|| Event::FaultDetected {
                    kind: psoram_obsv::DeviceFaultKind::WearOut,
                    units: 1,
                    cycle: t,
                });
                self.obsv.emit(|| Event::LineRetired {
                    line,
                    spare,
                    cycle: t,
                });
            }
            WearReadOutcome::Exhausted { .. } => {
                self.engine.poison(FaultClass::WearOut);
                return Err(OramError::Poisoned {
                    class: FaultClass::WearOut,
                });
            }
        }

        // Hardened fetch-path freshness verification: every loaded slot's
        // (content, record) pair — including whatever the wire served —
        // must classify Clean against the on-chip counters before its
        // blocks are admitted. The CMAC checks overlap the decrypt
        // pipeline, so only *detections* cost extra cycles.
        if let Some(auth) = &self.auth {
            let mut wire_verdict = FreshnessVerdict::Clean;
            for &bucket in &path {
                let b = self.tree.bucket(bucket);
                for slot in 0..b.num_slots() {
                    let served = serve_stale
                        .as_ref()
                        .filter(|((sb, ss), _, _)| (*sb, *ss) == (bucket, slot));
                    let verdict = match served {
                        Some((_, content, meta)) => {
                            auth.classify_served_slot(bucket, slot, content.as_ref(), meta.as_ref())
                        }
                        None => auth.verdict_slot(bucket, slot, b.slot(slot)),
                    };
                    if verdict == FreshnessVerdict::Clean {
                        continue;
                    }
                    if served.is_some() {
                        wire_verdict = verdict;
                    } else if let Some(class) = verdict.fault_class() {
                        // Stored state failing freshness outside a recovery
                        // pass: nothing on this path can be trusted — fail
                        // safe rather than serve it.
                        self.freshness.fetch_poisons += 1;
                        self.engine.poison(class);
                        return Err(OramError::Poisoned { class });
                    }
                }
            }
            if let Some(class) = wire_verdict.fault_class() {
                // Caught on the wire: charge one re-issue round trip and
                // read the true copy instead of the replayed one.
                self.freshness.stale_serves_detected += 1;
                t += 400;
                self.obsv.set_now(t);
                self.obsv.emit(|| Event::FaultDetected {
                    kind: crate::engine::fault_kind(class),
                    units: 1,
                    cycle: t,
                });
                serve_stale = None;
            }
        }

        // Gather fetched blocks with their slot coordinates. An undetected
        // stale serve (baselines) replaces the slot's bytes right here —
        // the controller consumes what the wire delivered.
        let mut live_old: HashMap<(u64, usize), BlockAddr> = HashMap::new();
        let mut fetched = std::mem::take(&mut self.scratch.fetched);
        fetched.clear();
        for &bucket in &path {
            let b = self.tree.bucket(bucket);
            for slot in 0..b.num_slots() {
                let stored = match &serve_stale {
                    Some(((sb, ss), content, _)) if (*sb, *ss) == (bucket, slot) => {
                        content.as_ref()
                    }
                    _ => b.slot(slot),
                };
                if let Some(block) = stored {
                    let mut block = block.clone();
                    self.decrypt_from_tree(&mut block);
                    if block.leaf() == self.posmap.persisted_get(block.addr()) {
                        live_old.insert((bucket, slot), block.addr());
                    }
                    fetched.push(block);
                }
            }
        }

        // Classify each fetched copy (see DESIGN.md):
        //  * the target's on-path copy becomes the primary (and, for PS
        //    variants, also spawns the pinned backup copy);
        //  * other copies whose leaf matches the current lookup are live
        //    primaries;
        //  * stale copies that still match the *persisted* map are live
        //    shadows — PS variants must rewrite them to keep recovery
        //    possible; non-persistent variants drop them;
        //  * anything else is dead and dropped.
        let keep_shadows = self.variant.uses_wpq();
        // Separate the target's on-path copies: multiple can coexist (e.g.
        // a committed primary and an older backup that drew the same leaf);
        // the newest (highest freshness counter) is the real value, exactly
        // as a recovering controller would decide from the IV counters.
        let target_in_stash = self.stash.contains(target);
        let is_target_copy = |b: &Block| !target_in_stash && b.addr() == target && b.leaf() == leaf;
        // The newest on-path copy of the target (highest freshness counter,
        // earliest on ties — the stable sort's pick) becomes the primary.
        let mut newest: Option<usize> = None;
        for (i, b) in fetched.iter().enumerate() {
            if is_target_copy(b) && newest.is_none_or(|j| fetched[j].header.seq < b.header.seq) {
                newest = Some(i);
            }
        }
        if let Some(i) = newest {
            let mut primary = fetched.remove(i);
            if keep_shadows {
                let backup = primary.to_backup(primary.leaf());
                self.stats.backups_created += 1;
                self.stash.insert(backup)?;
            }
            primary.is_backup = false;
            // Header leaf and freshness counter are updated in step 4.
            self.stash.insert(primary)?;
            // Older duplicates are superseded by the freshly created backup
            // and dropped below.
        }
        for mut block in fetched.drain(..) {
            if is_target_copy(&block) {
                // A superseded duplicate of the target: dropped.
                continue;
            }
            let a = block.addr();
            let current = self.lookup(a);
            let stale = self.stash.contains(a) || block.leaf() != current || block.is_backup;
            if !stale {
                block.is_backup = false;
                self.stash.insert(block)?;
            } else if keep_shadows && block.leaf() == self.posmap.persisted_get(a) {
                let shadow = block.to_backup(block.leaf());
                self.stats.shadows_rewritten += 1;
                self.stash.insert(shadow)?;
            }
            // else: dead copy, dropped.
        }
        self.scratch.fetched = fetched;

        // FullNVM: the fetched path is written into the on-chip NVM stash.
        if self.variant.onchip_tech().is_some() {
            let n = self.config.path_slots() as u64;
            t += self.onchip_batch_cycles(n, self.onchip.write_cycles);
            self.stats.onchip_nvm_writes += n;
        } else {
            t += self.config.path_slots() as u64; // pipelined SRAM fill
        }
        Ok((live_old, t))
    }

    /// Step ⑤: plan and persist the eviction. Returns the cycle at which
    /// the write-back fully reaches the NVM.
    fn step5_evict(
        &mut self,
        leaf: Leaf,
        live_old: &mut HashMap<(u64, usize), BlockAddr>,
        mut t: u64,
    ) -> Result<u64, OramError> {
        // Rcr-PS-ORAM additionally persists the stash's (dirty) real blocks
        // to a reserved NVM stash region every access ("the dirty blocks in
        // the stash are persisted for crash recoverability", §5.1) — a
        // redundant recovery image on top of the shadow-block mechanism.
        let stash_snapshot = if self.variant == ProtocolVariant::RcrPsOram {
            self.stash.blocks().iter().filter(|b| !b.is_backup).count() as u64
        } else {
            0
        };
        // Candidates: the whole stash. Blocks fetched from this path
        // (backups/shadows pinned here, plus primaries whose live copy the
        // rewrite destroys) must be re-placed; the rest are opportunistic.
        let on_path_live: HashSet<u64> = live_old.values().map(|a| a.0).collect();
        let all = self.stash.drain_matching(|_| true);
        let (must, opportunistic): (Vec<Block>, Vec<Block>) = if self.variant.uses_wpq() {
            // Must-place: backups/shadows (pinned to this path) and fetched
            // primaries still at their persisted position — their live NVM
            // copies are on this path and about to be destroyed. The
            // remapped target is *not* here: its old copy is protected by
            // its backup, and its new leaf may not fit this path.
            all.into_iter().partition(|b| {
                b.is_backup
                    || (on_path_live.contains(&b.addr().0)
                        && b.leaf() == self.posmap.persisted_get(b.addr()))
            })
        } else {
            // Non-persistent designs: plain Path ORAM greedy eviction.
            (Vec::new(), all)
        };
        // Small persistence domains use identity placement so the
        // write-back has no ordering constraints (see
        // `plan_eviction_in_place`); full-sized WPQs commit the whole round
        // atomically and can place greedily.
        let small_wpq =
            self.variant.uses_wpq() && self.config.data_wpq_capacity < self.config.path_slots();
        let (plan, leftovers) = if small_wpq {
            // Prefer greedy placement (better stash behaviour) when its
            // write-back admits a dependency-safe ordering; fall back to
            // identity placement only for plans with an oversize cycle.
            let (p, l) = plan_eviction(must.clone(), opportunistic.clone(), &self.tree, leaf);
            let orderable = p.real_blocks() <= self.config.data_wpq_capacity
                || order_for_small_wpq(&p.writes, live_old, self.config.data_wpq_capacity).is_ok();
            if orderable {
                (p, l)
            } else {
                self.stats.in_place_fallbacks += 1;
                crate::eviction::plan_eviction_in_place(
                    must,
                    opportunistic,
                    &self.tree,
                    leaf,
                    live_old,
                )
            }
        } else {
            plan_eviction(must, opportunistic, &self.tree, leaf)
        };
        self.stats.eviction_leftovers += leftovers.len() as u64;
        for b in leftovers {
            // Re-inserting drained blocks cannot overflow a correctly
            // sized stash; if it ever does, surface the typed error.
            self.stash.insert(b)?;
        }

        // FullNVM: blocks are read back out of the on-chip NVM stash.
        if self.variant.onchip_tech().is_some() {
            let n = self.config.path_slots() as u64;
            t += self.onchip_batch_cycles(n, self.onchip.read_cycles);
            self.stats.onchip_nvm_reads += n;
        }
        // Encrypt the eviction candidates (pad generation pipelined).
        t += self.crypto_lat.encrypt_cycles();

        let mut t_end = if self.variant.uses_wpq() {
            self.evict_through_wpq(plan, live_old, t)?
        } else {
            self.evict_direct(plan, t)?
        };

        if stash_snapshot > 0 {
            let block_bytes = self.config.block_bytes as u64;
            // The path-read buffer is idle during eviction; reuse it for
            // the snapshot region's addresses.
            let mut addrs = std::mem::take(&mut self.scratch.read_addrs);
            addrs.clear();
            addrs.extend((0..stash_snapshot).map(|i| self.stash_region_base + i * block_bytes));
            // Overlaps with the path write-back; the access pipeline only
            // observes the later of the two completions.
            let done = self
                .nvm
                .access_batch(addrs.iter().copied(), AccessKind::Write, to_mem(t));
            self.scratch.read_addrs = addrs;
            self.stats.stash_snapshot_writes += stash_snapshot;
            t_end = t_end.max(to_core(done));
        }
        Ok(t_end)
    }

    /// Direct write-back for the non-WPQ designs (`Baseline`, `FullNVM`,
    /// `Rcr-Baseline`): every slot write hits the NVM as it is issued, so a
    /// crash mid-eviction leaves a partially rewritten path (Figure 3).
    // The loop counters below are crash cursors (compared against the
    // injected crash plan), not element indices.
    #[allow(clippy::explicit_counter_loop)]
    fn evict_direct(
        &mut self,
        plan: crate::eviction::EvictionPlan,
        t: u64,
    ) -> Result<u64, OramError> {
        let crash_after = self.engine.armed_eviction_crash();
        let device = self.engine.device_mode();
        if device {
            // The path rewrite is the round a power failure interrupts.
            self.last_round_slots.clear();
        }
        let mut write_addrs = std::mem::take(&mut self.scratch.write_addrs);
        write_addrs.clear();
        let mut writes_done = 0usize;
        for w in plan.writes {
            if crash_after == Some(writes_done) {
                self.engine.disarm_crash();
                self.execute_crash();
                self.scratch.write_addrs = write_addrs;
                return Err(OramError::Crashed);
            }
            let mut stored = w.block;
            if let Some(b) = &mut stored {
                self.encrypt_for_tree(b);
            }
            if device && stored.is_some() {
                // Snapshot the version this write destroys: the replay
                // adversary's raw material (no records on direct designs).
                let prev = self.tree.bucket(w.bucket).slot(w.slot).cloned();
                if let Some(h) = self.history.as_mut() {
                    h.note_slot(w.bucket, w.slot, prev, None);
                }
                self.last_round_slots.push((w.bucket, w.slot));
            }
            self.tree.write_slot(w.bucket, w.slot, stored);
            write_addrs.push(self.tree.slot_nvm_addr(w.bucket, w.slot));
            writes_done += 1;
        }
        let frontend_done = self.frontend_process(write_addrs.len() as u64, t);
        let done = self
            .nvm
            .access_batch(write_addrs.iter().copied(), AccessKind::Write, to_mem(t));
        self.scratch.write_addrs = write_addrs;
        Ok(to_core(done).max(frontend_done))
    }

    /// WPQ-based atomic eviction (steps 5-A/5-B/5-C) for the PS-ORAM family.
    #[allow(clippy::explicit_counter_loop)] // committed_batches is a crash cursor
    fn evict_through_wpq(
        &mut self,
        plan: crate::eviction::EvictionPlan,
        live_old: &HashMap<(u64, usize), BlockAddr>,
        mut t: u64,
    ) -> Result<u64, OramError> {
        self.stats.eviction_rounds += 1;

        // Hardened designs authenticate the temporary PosMap before
        // trusting it for dirty-entry selection: a seal mismatch means the
        // metadata the round is about to persist is corrupt, and
        // persisting it would silently poison the recovery path.
        if let Some(auth) = &self.auth {
            if !auth.verify_temp(&self.temp.entries_sorted()) {
                self.engine.poison(FaultClass::MediaCorruption);
                return Err(OramError::Poisoned {
                    class: FaultClass::MediaCorruption,
                });
            }
        }

        // 5-A: identify the dirty metadata entries (PS-ORAM) or all path
        // entries (Naïve).
        let naive = self.variant == ProtocolVariant::NaivePsOram;

        // Does the whole round fit in one atomic batch?
        let real_count = plan.real_blocks();
        let batches: Vec<Vec<SlotWrite>> = if real_count <= self.config.data_wpq_capacity {
            let (reals, dummies): (Vec<SlotWrite>, Vec<SlotWrite>) =
                plan.writes.iter().cloned().partition(|w| w.block.is_some());
            let mut b = vec![reals];
            b[0].extend(dummies);
            b
        } else {
            order_for_small_wpq(&plan.writes, live_old, self.config.data_wpq_capacity).map_err(
                |_| OramError::Invariant {
                    context: "plan selection guarantees an orderable write-back",
                },
            )?
        };

        let crash_after_batches = self.engine.armed_eviction_crash();

        let mut committed_batches = 0usize;
        let mut write_addrs = std::mem::take(&mut self.scratch.write_addrs);
        write_addrs.clear();
        let mut entry_addrs = std::mem::take(&mut self.scratch.entry_addrs);
        entry_addrs.clear();
        for batch in batches {
            if crash_after_batches == Some(committed_batches) {
                // Power failure while the next round is being assembled:
                // model entries mid-push by opening a round, pushing the
                // batch, and crashing before the end signal.
                let entries = batch
                    .iter()
                    .filter(|w| w.block.is_some())
                    .map(|w| WpqEntry {
                        addr: self.tree.slot_nvm_addr(w.bucket, w.slot),
                        value: w.clone(),
                    })
                    .collect();
                self.engine.stage_abandoned_round(entries);
                self.engine.disarm_crash();
                self.execute_crash();
                self.scratch.write_addrs = write_addrs;
                self.scratch.entry_addrs = entry_addrs;
                return Err(OramError::Crashed);
            }

            // 5-B: drainer start signal; push data and matching metadata.
            self.engine.begin_round()?;
            let mut pushed = 0u64;
            for w in &batch {
                // A block's data and its PosMap entry must land in the same
                // atomic round. If either queue is out of room, stall: commit
                // and drain what is already pushed (each sub-round is still
                // atomic, exactly like a planned small-WPQ split), then
                // reopen before pushing this block.
                if self.engine.data_is_full() || self.engine.posmap_is_full() {
                    self.engine.note_stall();
                    self.engine.commit_round()?;
                    let (data, posmap) = self.engine.drain();
                    self.apply_committed(&data, &posmap, &mut write_addrs, &mut entry_addrs);
                    self.engine.begin_round()?;
                }
                let nvm_addr = self.tree.slot_nvm_addr(w.bucket, w.slot);
                if w.block.is_some() {
                    self.engine.push_data(WpqEntry {
                        addr: nvm_addr,
                        value: w.clone(),
                    })?;
                    pushed += 1;
                }
                // Metadata for this batch: dirty entries (PS-ORAM) of
                // evicted primaries; Naïve pushes an entry per slot.
                if let Some(b) = &w.block {
                    if !b.is_backup {
                        let a = b.addr();
                        if let Some(l) = self.temp.get(a) {
                            self.engine.push_posmap(WpqEntry {
                                addr: self.posmap_entry_nvm_addr(a),
                                value: (a, l),
                            })?;
                            pushed += 1;
                        } else if naive {
                            self.engine.push_posmap(WpqEntry {
                                addr: self.posmap_entry_nvm_addr(a),
                                value: (a, b.leaf()),
                            })?;
                            pushed += 1;
                        }
                    }
                }
            }
            if naive {
                // Naïve also flushes a metadata entry per dummy slot, so the
                // full Z·(L+1) PosMap entries reach the NVM every round.
                for w in batch.iter().filter(|w| w.block.is_none()) {
                    self.stats.posmap_entry_writes += 1;
                    entry_addrs.push(self.naive_slot_entry_addr(w));
                }
            }
            t += pushed; // one cycle per WPQ push
            self.obsv.set_now(t);

            // 5-C: end signal — the atomic commit point — then flush.
            self.engine.commit_round()?;
            let (data, posmap) = self.engine.drain();
            self.apply_committed(&data, &posmap, &mut write_addrs, &mut entry_addrs);
            // Dummy slots of this batch are rewritten directly after the
            // commit: they carry no recoverable data and only overwrite
            // copies whose addresses committed in this or earlier batches.
            for w in batch.iter().filter(|w| w.block.is_none()) {
                if self.history.is_some() {
                    let prev_content = self.tree.bucket(w.bucket).slot(w.slot).cloned();
                    let prev_meta = self
                        .auth
                        .as_ref()
                        .and_then(|a| a.slot_record(w.bucket, w.slot));
                    if let Some(h) = self.history.as_mut() {
                        h.note_slot(w.bucket, w.slot, prev_content, prev_meta);
                    }
                }
                if let Some(auth) = &mut self.auth {
                    auth.record_slot(w.bucket, w.slot, None);
                }
                self.tree.write_slot(w.bucket, w.slot, None);
                write_addrs.push(self.tree.slot_nvm_addr(w.bucket, w.slot));
            }
            committed_batches += 1;
            self.stats.eviction_batches += 1;
        }

        // Issue the full-path writes plus metadata writes to the NVM. The
        // WPQ drains in address order (an FR-FCFS-style controller avoids
        // the bank clustering a literal commit-order drain would cause);
        // atomicity was already established by the end signals above.
        write_addrs.sort_unstable();
        entry_addrs.sort_unstable();
        let frontend_done = self.frontend_process(write_addrs.len() as u64, t);
        // PosMap entries are 7-8 B: they occupy the data bus for a single
        // beat, though the cell-programming pulse is unchanged.
        let done = self
            .nvm
            .access_batch(write_addrs.iter().copied(), AccessKind::Write, to_mem(t));
        let mut t_end = to_core(done).max(frontend_done);
        if !entry_addrs.is_empty() {
            let done = self.nvm.access_batch_sized(
                entry_addrs.iter().copied(),
                AccessKind::Write,
                to_mem(t),
                8,
            );
            t_end = t_end.max(to_core(done));
        }
        self.scratch.write_addrs = write_addrs;
        self.scratch.entry_addrs = entry_addrs;
        Ok(t_end)
    }

    /// Applies one committed WPQ round to the NVM state: tree slots, main
    /// PosMap, temp-entry retirement, and the committed-value ledger.
    fn apply_committed(
        &mut self,
        data: &[WpqEntry<SlotWrite>],
        posmap: &[WpqEntry<PosMapFlush>],
        write_addrs: &mut Vec<u64>,
        entry_addrs: &mut Vec<u64>,
    ) {
        // The full-path rewrite covers dummy slots too: the data entries
        // carry the real blocks, and the remaining slots of the same
        // buckets are written as encrypted dummies by the same round. For
        // traffic/timing, the whole path's slots are pushed by the caller.
        let mut touched_addrs = std::mem::take(&mut self.scratch.touched_addrs);
        touched_addrs.clear();
        let device = self.engine.device_mode() && !(data.is_empty() && posmap.is_empty());
        if device {
            // This round becomes the one whose media programming a crash
            // would interrupt.
            self.last_round_slots.clear();
            self.last_round_posmap.clear();
        }
        for e in data {
            let w = &e.value;
            let mut stored = w.block.clone();
            if let Some(b) = &mut stored {
                touched_addrs.push(b.addr());
                self.encrypt_for_tree(b);
            }
            if self.history.is_some() {
                // Snapshot the (content, record) pair this round replaces:
                // the coherent stale unit a replay adversary re-serves.
                let prev_content = self.tree.bucket(w.bucket).slot(w.slot).cloned();
                let prev_meta = self
                    .auth
                    .as_ref()
                    .and_then(|a| a.slot_record(w.bucket, w.slot));
                if let Some(h) = self.history.as_mut() {
                    h.note_slot(w.bucket, w.slot, prev_content, prev_meta);
                }
            }
            if let Some(auth) = &mut self.auth {
                auth.record_slot(w.bucket, w.slot, stored.as_ref());
            }
            if device {
                self.last_round_slots.push((w.bucket, w.slot));
            }
            self.tree.write_slot(w.bucket, w.slot, stored);
            write_addrs.push(e.addr);
        }
        for e in posmap {
            let (a, l) = e.value;
            if self.history.is_some() {
                let prev_leaf = self.posmap.persisted_get(a);
                let prev_meta = self.auth.as_ref().and_then(|x| x.posmap_record(a.0));
                if let Some(h) = self.history.as_mut() {
                    h.note_posmap(a.0, prev_leaf, prev_meta);
                }
            }
            self.posmap.persist(a, l);
            self.temp.remove(a);
            if let Some(auth) = &mut self.auth {
                auth.record_posmap(a.0, l.0);
            }
            if device {
                self.last_round_posmap.push(a);
            }
            self.stats.dirty_entries_flushed += 1;
            self.stats.posmap_entry_writes += 1;
            entry_addrs.push(e.addr);
        }
        if !posmap.is_empty() {
            if let Some(auth) = &mut self.auth {
                auth.seal_temp(&self.temp.entries_sorted());
            }
        }
        if let Some(auth) = &self.auth {
            // The counter-tree root rides the same failure-atomic commit
            // as the round's data: replaying any unit of an earlier round
            // now leaves its counter behind the anchored root.
            self.engine.persist_root(auth.root());
        }
        // Ledger: the recoverable value of each touched address is the
        // written copy that matches the (new) persisted PosMap.
        for &a in &touched_addrs {
            let leaf = self.posmap.persisted_get(a);
            // Multiple matching copies can commit in one round (a primary
            // that re-drew its old leaf plus its backup): the newest one —
            // highest freshness counter — is what recovery restores.
            let newest = data
                .iter()
                .filter_map(|e| e.value.block.as_ref())
                .filter(|b| b.addr() == a && b.leaf() == leaf)
                .max_by_key(|b| b.header.seq);
            if let Some(b) = newest {
                self.ledger
                    .commit_if_fresh(a.0, b.header.seq, b.payload.clone());
            }
        }
        self.scratch.touched_addrs = touched_addrs;
    }

    /// Metadata-entry address Naïve writes for a dummy slot. Dummy entries
    /// correspond to no particular table row; spread them over the entry
    /// region like real (block-address-indexed) entries so they exercise
    /// banks the same way.
    fn naive_slot_entry_addr(&self, w: &SlotWrite) -> u64 {
        let slot_index = w.bucket * self.config.bucket_slots as u64 + w.slot as u64;
        let spread = slot_index.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16;
        self.posmap_base + (spread * 8) % (self.config.capacity_blocks() * 8)
    }

    fn posmap_entry_nvm_addr(&self, addr: BlockAddr) -> u64 {
        if let Some(rec) = &self.recursion {
            if let Some(level0) = rec.levels().first() {
                // The entry lives in a PosMap_1 block inside the posmap tree.
                return level0.base_addr
                    + rec.block_index(addr, 0) * self.config.block_bytes as u64;
            }
        }
        self.posmap_base + addr.0 * 8
    }

    /// Immediately executes a power failure (also used by
    /// [`PathOram::inject_crash`] plans).
    pub fn crash_now(&mut self) -> CrashReport {
        self.execute_crash()
    }

    fn execute_crash(&mut self) -> CrashReport {
        let stash_durable = self.variant.stash_durable();
        // ADR flushes committed WPQ rounds; open rounds are lost. The
        // engine latches the crashed state and counts the crash.
        let (data, posmap) = self.engine.crash();
        let mut write_addrs = Vec::new();
        let mut entry_addrs = Vec::new();
        let report = CrashReport {
            stash_blocks_lost: if stash_durable { 0 } else { self.stash.len() },
            temp_entries_lost: if stash_durable { 0 } else { self.temp.len() },
            wpq_data_flushed: data.len(),
            wpq_posmap_flushed: posmap.len(),
            stash_durable,
        };
        self.apply_committed(&data, &posmap, &mut write_addrs, &mut entry_addrs);
        if !stash_durable {
            self.stash.wipe();
            self.temp.wipe();
        }
        self.posmap.crash();
        if let Some(rec) = &mut self.recursion {
            rec.wipe_plb();
        }
        // Recovery replay for the integrity tree: fold whatever the ADR
        // flush actually persisted into the digest state so the root
        // matches the NVM (no false alarms, no masked tampering).
        if let Some(leaf) = self.pending_integrity_path.take() {
            self.refresh_integrity_path(leaf);
        }
        // Device faults: the power failure interrupts the media programming
        // of the last applied round (including anything the ADR flush just
        // applied above) — torn flushes, lost signals, and bit rot land on
        // those units now, behind the controller's back.
        if self.engine.device_mode() {
            let damage = self
                .engine
                .draw_crash_damage(self.last_round_slots.len(), self.last_round_posmap.len());
            self.apply_device_damage(&damage);
        }
        report
    }

    /// Applies drawn device damage to the NVM image: flips a payload (or
    /// header) bit of each damaged tree slot and corrupts each damaged
    /// persisted PosMap entry. Tags are deliberately *not* refreshed —
    /// this is the adversary writing behind the controller's back.
    fn apply_device_damage(&mut self, damage: &RoundDamage) {
        for &i in &damage.data_units {
            let (bucket, slot) = self.last_round_slots[i];
            if let Some(mut blk) = self.tree.bucket(bucket).slot(slot).cloned() {
                let e = self.engine.device_entropy();
                if blk.payload.is_empty() {
                    blk.header.iv1 ^= 1 | e;
                } else {
                    let idx = e as usize % blk.payload.len();
                    blk.payload[idx] ^= 1 << ((e >> 32) & 7);
                }
                self.tree.write_slot(bucket, slot, Some(blk));
            }
        }
        for &i in &damage.posmap_units {
            let addr = self.last_round_posmap[i];
            let e = self.engine.device_entropy();
            self.posmap.corrupt_persisted(addr, e);
        }
        self.apply_freshness_damage(damage);
    }

    /// Applies the freshness adversary's share of the drawn crash damage:
    /// replays restore a unit's recorded previous `(content, record)`
    /// pair wholesale (coherent but stale — only the trusted counter can
    /// tell), and splices swap two authentic units across addresses.
    /// Applied after the bit flips, so a replay also overwrites any flip
    /// that landed on the same unit. A splice is only coherent when both
    /// ends are distinct units that still carry authentic records — a
    /// drawn pair that collapses onto one media unit, or whose record
    /// was already destroyed by bit rot, is a no-op the engine never
    /// counts (the confirm calls are the ground truth).
    fn apply_freshness_damage(&mut self, damage: &RoundDamage) {
        if self.history.is_none() {
            return;
        }
        let restored_slot = if let Some(i) = damage.replayed_data {
            let (bucket, slot) = self.last_round_slots[i];
            let prev = self
                .history
                .as_ref()
                .and_then(|h| h.slot(bucket, slot).cloned());
            if let Some((content, meta)) = prev {
                self.tree.write_slot(bucket, slot, content);
                if let Some(auth) = self.auth.as_mut() {
                    auth.set_slot_record(bucket, slot, meta);
                }
                self.engine.confirm_stale_replay();
                Some((bucket, slot))
            } else {
                None
            }
        } else {
            None
        };
        let restored_addr = if let Some(i) = damage.replayed_posmap {
            let addr = self.last_round_posmap[i];
            let prev = self
                .history
                .as_ref()
                .and_then(|h| h.posmap(addr.0).copied());
            if let Some((leaf, meta)) = prev {
                self.posmap.overwrite_persisted(addr, leaf);
                if let Some(auth) = self.auth.as_mut() {
                    auth.set_posmap_record(addr.0, meta);
                }
                self.engine.confirm_stale_replay();
                Some(addr)
            } else {
                None
            }
        } else {
            None
        };
        if let Some((i, j)) = damage.spliced_data {
            let (b1, s1) = self.last_round_slots[i];
            let (b2, s2) = self.last_round_slots[j];
            // A bit-rotted end no longer carries an authentic record —
            // unless the replay above just overwrote the rot wholesale.
            let rotted = |c: (u64, usize)| {
                restored_slot != Some(c)
                    && damage
                        .data_units
                        .iter()
                        .any(|&k| self.last_round_slots[k] == c)
            };
            if (b1, s1) != (b2, s2) && !rotted((b1, s1)) && !rotted((b2, s2)) {
                let c1 = self.tree.bucket(b1).slot(s1).cloned();
                let c2 = self.tree.bucket(b2).slot(s2).cloned();
                self.tree.write_slot(b1, s1, c2);
                self.tree.write_slot(b2, s2, c1);
                if let Some(auth) = self.auth.as_mut() {
                    let r1 = auth.slot_record(b1, s1);
                    let r2 = auth.slot_record(b2, s2);
                    auth.set_slot_record(b1, s1, r2);
                    auth.set_slot_record(b2, s2, r1);
                }
                self.engine.confirm_cross_splice();
            }
        }
        if let Some((i, j)) = damage.spliced_posmap {
            let a1 = self.last_round_posmap[i];
            let a2 = self.last_round_posmap[j];
            let rotted = |a: BlockAddr| {
                restored_addr != Some(a)
                    && damage
                        .posmap_units
                        .iter()
                        .any(|&k| self.last_round_posmap[k] == a)
            };
            if a1 != a2 && !rotted(a1) && !rotted(a2) {
                let l1 = self.posmap.persisted_get(a1);
                let l2 = self.posmap.persisted_get(a2);
                self.posmap.overwrite_persisted(a1, l2);
                self.posmap.overwrite_persisted(a2, l1);
                if let Some(auth) = self.auth.as_mut() {
                    let r1 = auth.posmap_record(a1.0);
                    let r2 = auth.posmap_record(a2.0);
                    auth.set_posmap_record(a1.0, r2);
                    auth.set_posmap_record(a2.0, r1);
                }
                self.engine.confirm_cross_splice();
            }
        }
    }

    /// Recovers the controller after a crash, per the paper's §4.3
    /// procedure: the persisted PosMap becomes the working map and normal
    /// operation resumes.
    ///
    /// Returns a [`RecoveryReport`] carrying the consistency verdict and,
    /// on failure, the violation text (PS-ORAM designs always pass; the
    /// baselines generally do not). The report is also retained in
    /// [`PathOram::last_recovery`] and failures are counted in
    /// `OramStats::recovery_failures`.
    ///
    /// With device faults enabled on a hardened design, recovery runs the
    /// full detect → classify → repair → fail-safe pipeline first: a CMAC
    /// scan wipes slots and PosMap entries that fail authentication, each
    /// damaged committed address is restored from its newest surviving
    /// authenticated copy, and addresses with no surviving copy are rolled
    /// back with a typed [`RecoveryError`] instead of serving corrupt
    /// data.
    ///
    /// Idempotent: calling `recover` on a controller that is not crashed
    /// repeats the last verdict without touching state or counters.
    pub fn recover(&mut self) -> RecoveryReport {
        if !self.engine.is_crashed() {
            return self.last_recovery().cloned().unwrap_or_else(|| {
                RecoveryReport::from_check(Ok(()), self.ledger.committed_len())
            });
        }
        let incidents = self.engine.take_incidents();
        let mut errors: Vec<RecoveryError> = Vec::new();
        let mut repairs = 0u64;
        let mut rolled_back: Vec<u64> = Vec::new();
        let mut replays_detected = 0u64;
        let mut splices_detected = 0u64;

        if let Some(mut auth) = self.auth.take() {
            // Root sanity: the on-chip counter tree must agree with the
            // root anchored in the persistence domain. A mismatch means
            // the trusted anchor itself cannot be believed — fail safe.
            if self
                .engine
                .persisted_root()
                .is_some_and(|r| r != auth.root())
            {
                self.engine.poison(FaultClass::StaleReplay);
            }
            // Phase 1 — detect & classify: every tagged tree slot is
            // classified against the trusted counters, worst evidence
            // first. A replayed or spliced unit is coherent (its CMAC
            // verifies) — only the counter comparison convicts it. Every
            // convicted slot is wiped; any committed value it held is
            // restored from an authenticated redundant copy in phase 3.
            for (bucket, slot) in auth.tagged_slots_sorted() {
                let content = self.tree.bucket(bucket).slot(slot).cloned();
                match auth.verdict_slot(bucket, slot, content.as_ref()) {
                    FreshnessVerdict::Clean => {}
                    verdict => {
                        match verdict {
                            FreshnessVerdict::Stale | FreshnessVerdict::Missing => {
                                replays_detected += 1;
                            }
                            FreshnessVerdict::Spliced => splices_detected += 1,
                            _ => {}
                        }
                        self.tree.write_slot(bucket, slot, None);
                        auth.record_slot(bucket, slot, None);
                    }
                }
            }
            // Phase 2 — persisted PosMap entries: repair a corrupt,
            // replayed, or spliced leaf label from the newest
            // authenticated block copy of the address (the redundant copy
            // names the true leaf, and its counter proves it fresher).
            for a in auth.tagged_posmap_sorted() {
                let addr = BlockAddr(a);
                let leaf = self.posmap.persisted_get(addr);
                match auth.verdict_posmap(a, leaf.0) {
                    FreshnessVerdict::Clean => continue,
                    FreshnessVerdict::Stale | FreshnessVerdict::Missing => replays_detected += 1,
                    FreshnessVerdict::Spliced => splices_detected += 1,
                    FreshnessVerdict::Tampered => {}
                }
                match self.newest_valid_copy(addr, &auth) {
                    Some(copy) => {
                        self.posmap.persist(addr, copy.leaf());
                        auth.record_posmap(a, copy.leaf().0);
                        repairs += 1;
                    }
                    None => {
                        // Accept the damaged label (re-tag it so the scan
                        // converges) and forget the committed value: typed
                        // data loss, never silent corruption.
                        auth.record_posmap(a, leaf.0);
                        self.ledger.rollback(a, None);
                        rolled_back.push(a);
                        errors.push(RecoveryError::UnrecoverableAddress {
                            addr: a,
                            detail: "posmap entry corrupt; no surviving authenticated copy"
                                .to_string(),
                        });
                    }
                }
            }
            // Phase 3 — repair-from-redundant-copy: every committed
            // address the audit can no longer find is re-pointed at its
            // newest surviving authenticated copy; addresses with none
            // are rolled back with a typed error.
            for (a, detail) in self.audit_failures() {
                let addr = BlockAddr(a);
                match self.newest_valid_copy(addr, &auth) {
                    Some(copy) => {
                        let mut plain = copy.clone();
                        self.decrypt_from_tree(&mut plain);
                        let intact = self.ledger.committed_value(a) == Some(&plain.payload);
                        self.posmap.persist(addr, copy.leaf());
                        auth.record_posmap(a, copy.leaf().0);
                        self.ledger
                            .rollback(a, Some((copy.header.seq, plain.payload)));
                        if intact {
                            repairs += 1;
                        } else {
                            // The survivor is an older version: detected
                            // rollback, reported as typed loss.
                            rolled_back.push(a);
                            errors.push(RecoveryError::UnrecoverableAddress { addr: a, detail });
                        }
                    }
                    None => {
                        self.ledger.rollback(a, None);
                        rolled_back.push(a);
                        errors.push(RecoveryError::UnrecoverableAddress { addr: a, detail });
                    }
                }
            }
            // The temporary PosMap did not survive the power failure.
            auth.clear_temp_seal();
            // Close the freshness epoch: repairs bumped counters, so
            // re-anchor the persisted root for the rounds that follow.
            auth.advance_epoch();
            self.engine.persist_root(auth.root());
            self.auth = Some(auth);
        }
        if let Some(class) = self.engine.poisoned() {
            errors.push(RecoveryError::Poisoned { class });
        }
        let mut report =
            RecoveryReport::from_check(self.check_recoverability(), self.ledger.committed_len());
        rolled_back.sort_unstable();
        rolled_back.dedup();
        report.repairs = repairs;
        report.rolled_back = rolled_back;
        report.incidents = incidents;
        report.errors = errors;
        report.replays_detected = replays_detected;
        report.splices_detected = splices_detected;
        report.poisoned = self.engine.poisoned().is_some();
        self.engine.finish_recovery(report)
    }

    /// The committed addresses the recoverability audit can no longer
    /// locate, with the audit's verbatim complaint (sorted by address).
    fn audit_failures(&self) -> Vec<(u64, String)> {
        self.ledger.audit_committed_collect(
            "recoverable copy",
            |a| {
                let addr = BlockAddr(a);
                let leaf = self.posmap.persisted_get(addr);
                let mut best: Option<Block> = None;
                for idx in self.tree.path_indices(leaf) {
                    let bucket = self.tree.bucket(idx);
                    for s in 0..bucket.num_slots() {
                        if let Some(b) = bucket.slot(s) {
                            if b.addr() == addr
                                && b.leaf() == leaf
                                && best.as_ref().is_none_or(|x| b.header.seq > x.header.seq)
                            {
                                best = Some(b.clone());
                            }
                        }
                    }
                }
                let found = best.map(|mut copy| {
                    self.decrypt_from_tree(&mut copy);
                    copy.payload
                });
                (leaf, found)
            },
            |a, expected| {
                self.variant.stash_durable()
                    && self.stash.get(BlockAddr(a)).is_some_and(|b| {
                        &b.payload == self.ledger.written_value(a).unwrap_or(expected)
                    })
            },
        )
    }

    /// The newest (highest freshness counter) block copy of `addr`
    /// anywhere on media that passes slot authentication. Deterministic:
    /// buckets are scanned in sorted order.
    fn newest_valid_copy(&self, addr: BlockAddr, auth: &AuthTags) -> Option<Block> {
        let mut best: Option<Block> = None;
        for idx in self.tree.materialized_indices() {
            let bucket = self.tree.bucket(idx);
            for s in 0..bucket.num_slots() {
                if let Some(b) = bucket.slot(s) {
                    if b.addr() == addr
                        && auth.verify_slot(idx, s, Some(b))
                        && best.as_ref().is_none_or(|x| b.header.seq > x.header.seq)
                    {
                        best = Some(b.clone());
                    }
                }
            }
        }
        best
    }

    /// The report of the most recent [`PathOram::recover`] call.
    pub fn last_recovery(&self) -> Option<&RecoveryReport> {
        self.engine.last_recovery()
    }

    /// Verifies the crash-recovery invariant: every address with a durably
    /// committed value has a copy in NVM (or, for durable-stash designs, in
    /// the stash) at its *persisted* PosMap position holding exactly that
    /// value.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency.
    pub fn check_recoverability(&self) -> Result<(), String> {
        self.ledger.audit_committed(
            "recoverable copy",
            |a| {
                let addr = BlockAddr(a);
                let leaf = self.posmap.persisted_get(addr);
                // Recovery picks, among copies on the persisted path whose
                // header matches the persisted leaf, the newest one (highest
                // freshness counter / IV).
                let mut best: Option<Block> = None;
                for idx in self.tree.path_indices(leaf) {
                    let bucket = self.tree.bucket(idx);
                    for s in 0..bucket.num_slots() {
                        if let Some(b) = bucket.slot(s) {
                            if b.addr() == addr
                                && b.leaf() == leaf
                                && best.as_ref().is_none_or(|x| b.header.seq > x.header.seq)
                            {
                                best = Some(b.clone());
                            }
                        }
                    }
                }
                let found = best.map(|mut copy| {
                    self.decrypt_from_tree(&mut copy);
                    copy.payload
                });
                (leaf, found)
            },
            // Durable-stash designs (FullNVM): a stash copy holding the
            // last written value satisfies recoverability by itself.
            |a, expected| {
                self.variant.stash_durable()
                    && self.stash.get(BlockAddr(a)).is_some_and(|b| {
                        &b.payload == self.ledger.written_value(a).unwrap_or(expected)
                    })
            },
        )
    }

    /// Reads back every touched address and compares against the
    /// appropriate ledger: the last *written* value if the controller never
    /// crashed, or the last *committed* value (falling back to zeros) after
    /// a crash+recovery.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    pub fn verify_contents(&mut self, after_crash: bool) -> Result<(), String> {
        let addrs: Vec<u64> = {
            let mut v: Vec<u64> = self.touched.iter().copied().collect();
            v.sort_unstable();
            v
        };
        for a in addrs {
            // Snapshot the expectation *before* reading: the read itself
            // updates the ledgers (it is a fresh access).
            let expected = self
                .ledger
                .expected_value(a, after_crash, self.config.payload_bytes);
            let got = self.read(BlockAddr(a)).map_err(|e| e.to_string())?;
            if got != expected {
                return Err(format!(
                    "a{a}: read {got:?}, expected {expected:?} (after_crash={after_crash})"
                ));
            }
        }
        Ok(())
    }

    /// The committed-value oracle (test observability).
    pub fn committed_value(&self, addr: BlockAddr) -> Option<&Vec<u8>> {
        self.ledger.committed_value(addr.0)
    }

    /// The last program-written value (test observability).
    pub fn written_value(&self, addr: BlockAddr) -> Option<&Vec<u8>> {
        self.ledger.written_value(addr.0)
    }

    /// Addresses touched since construction.
    pub fn touched_addrs(&self) -> Vec<BlockAddr> {
        let mut v: Vec<BlockAddr> = self.touched.iter().map(|&a| BlockAddr(a)).collect();
        v.sort_unstable();
        v
    }

    /// Occupied temporary-PosMap entries.
    pub fn temp_posmap_len(&self) -> usize {
        self.temp.len()
    }

    /// The functional ORAM tree (inspection in tests and tools).
    pub fn tree(&self) -> &OramTree {
        &self.tree
    }
}
