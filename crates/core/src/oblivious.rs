//! Oblivious (cmov-style) PosMap updates for trusted memory regions.
//!
//! When the PosMap lives in an SGX-EPC-like trusted region (paper §2.1,
//! §4.4), reads/writes to it must still be *oblivious*: the paper adopts
//! the cmov-based approach of ZeroTrace/Obfuscuro, where an update touches
//! **every** entry of the table but conditionally moves the new value only
//! into the right one — so the address trace is independent of which entry
//! changed (Claim 3).
//!
//! This module provides a functional + timing model of that primitive, and
//! the statistical instrumentation to confirm its access pattern carries
//! no information.

use serde::{Deserialize, Serialize};

/// A trusted-region table updated obliviously with cmov sweeps.
///
/// # Examples
///
/// ```
/// use psoram_core::oblivious::CmovTable;
///
/// let mut t = CmovTable::new(64, 2);
/// let trace1 = t.update(3, 1111);
/// let trace2 = t.update(57, 2222);
/// // The observable traces are identical regardless of the index written.
/// assert_eq!(trace1.touched, trace2.touched);
/// assert_eq!(t.get(3), 1111);
/// assert_eq!(t.get(57), 2222);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CmovTable {
    entries: Vec<u64>,
    /// Core cycles per entry touched during a sweep.
    cycles_per_entry: u64,
    sweeps: u64,
}

/// The observable effect of one oblivious update.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepTrace {
    /// Indices touched, in order — always `0..n`, whatever was updated.
    pub touched: Vec<usize>,
    /// Core cycles consumed by the sweep.
    pub cycles: u64,
}

impl CmovTable {
    /// Creates a zero-initialized table of `n` entries.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, cycles_per_entry: u64) -> Self {
        assert!(n > 0, "table must be non-empty");
        CmovTable {
            entries: vec![0; n],
            cycles_per_entry,
            sweeps: 0,
        }
    }

    /// Obliviously updates entry `index` to `value`, touching every entry.
    ///
    /// The returned [`SweepTrace`] is what a bus observer sees; it is
    /// identical for every `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn update(&mut self, index: usize, value: u64) -> SweepTrace {
        assert!(index < self.entries.len(), "index out of range");
        self.sweeps += 1;
        let mut touched = Vec::with_capacity(self.entries.len());
        for i in 0..self.entries.len() {
            // The cmov: a branchless conditional move. `mask` is all-ones
            // only for the target entry, so the memory access pattern —
            // read-modify-write of every entry — is data-independent.
            let mask = ((i == index) as u64).wrapping_neg();
            self.entries[i] = (self.entries[i] & !mask) | (value & mask);
            touched.push(i);
        }
        SweepTrace {
            touched,
            cycles: self.entries.len() as u64 * self.cycles_per_entry,
        }
    }

    /// Plain read of entry `index` (reads are oblivious in the same way on
    /// real hardware; functional model returns directly).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn get(&self, index: usize) -> u64 {
        self.entries[index]
    }

    /// Number of oblivious sweeps performed.
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }

    /// Table size in entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the table has no entries (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_is_functionally_correct() {
        let mut t = CmovTable::new(16, 1);
        t.update(5, 42);
        t.update(9, 77);
        assert_eq!(t.get(5), 42);
        assert_eq!(t.get(9), 77);
        assert_eq!(t.get(0), 0);
    }

    #[test]
    fn update_overwrites() {
        let mut t = CmovTable::new(4, 1);
        t.update(2, 1);
        t.update(2, 2);
        assert_eq!(t.get(2), 2);
    }

    #[test]
    fn sweep_trace_is_index_independent() {
        let mut t = CmovTable::new(32, 3);
        let traces: Vec<SweepTrace> = (0..32).map(|i| t.update(i, i as u64)).collect();
        for w in traces.windows(2) {
            assert_eq!(w[0], w[1], "sweep traces must be indistinguishable");
        }
        assert_eq!(traces[0].cycles, 96);
        assert_eq!(t.sweeps(), 32);
    }

    #[test]
    fn sweep_touches_every_entry_once() {
        let mut t = CmovTable::new(8, 1);
        let trace = t.update(0, 9);
        assert_eq!(trace.touched, (0..8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_update_panics() {
        CmovTable::new(4, 1).update(4, 0);
    }
}
