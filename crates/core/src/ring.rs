//! Ring ORAM with PS-ORAM-style crash consistency.
//!
//! The paper claims PS-ORAM "supports efficient crash consistency for
//! general ORAM protocols" but evaluates only Path ORAM. This module
//! substantiates the claim for the other mainstream tree ORAM, **Ring
//! ORAM** (Ren et al., USENIX Security'15): buckets hold `Z` real plus `S`
//! dummy slots behind a per-bucket permutation; a read touches exactly
//! *one* slot per bucket; a full eviction path is written only every `A`
//! accesses; buckets whose read budgets run out are reshuffled early.
//!
//! Crash-consistency differences from Path ORAM turn out to be friendly:
//!
//! * A read only flips *metadata* (valid bits and counts); the target's
//!   physical bytes stay in its bucket until that bucket is next
//!   rewritten, so no backup block is needed at access time — the paper's
//!   Case-2 "restore blocks marked invalid" recovery applies directly.
//! * Bucket rewrites (evict-path and early reshuffles) are the only
//!   destructive operations. The evict-path rewrite commits as **one
//!   atomic WPQ round** (blocks can migrate shallower between buckets, so
//!   per-bucket rounds could destroy a live copy before its new home
//!   commits); an early reshuffle only rewrites content back into the same
//!   bucket and commits as its own small round.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use psoram_crypto::Hash128;
use psoram_nvm::{
    AccessKind, FaultClass, FaultConfig, FaultStats, NvmConfig, NvmController, ReadFault, WpqEntry,
};
use psoram_obsv::{Event, Phase, Tap};

use crate::auth::{AuthTags, FreshnessStats, FreshnessVerdict, UnitHistory};
use crate::block::Block;
use crate::crash::{CrashPoint, RecoveryError, RecoveryReport};
use crate::engine::{
    to_core, to_mem, AccessScratch, CommitLedger, PersistEngine, RoundDamage, WearReadOutcome,
};
use crate::posmap::{PosMap, TempPosMap};
use crate::types::{BlockAddr, Leaf, OramError};

/// Geometry and policy of a Ring ORAM instance.
///
/// # Examples
///
/// ```
/// use psoram_core::ring::RingConfig;
///
/// let cfg = RingConfig::small_test();
/// assert_eq!(cfg.bucket_physical_slots(), cfg.real_slots + cfg.dummy_slots);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RingConfig {
    /// Tree height `L`.
    pub levels: u32,
    /// Real block slots per bucket (`Z`).
    pub real_slots: usize,
    /// Dummy slots per bucket (`S`) — the per-bucket read budget.
    pub dummy_slots: usize,
    /// Evict-path rate `A`: one eviction every `A` accesses.
    pub evict_rate: u64,
    /// Modeled block size in bytes.
    pub block_bytes: usize,
    /// Functional payload bytes stored.
    pub payload_bytes: usize,
    /// Stash capacity.
    pub stash_capacity: usize,
    /// Temporary PosMap capacity.
    pub temp_posmap_capacity: usize,
    /// Data WPQ capacity for the persistent variant (must hold one whole
    /// eviction path: `(Z+S)·(L+1)` slot images).
    pub wpq_capacity: usize,
    /// Fraction of real slots holding blocks.
    pub utilization: f64,
}

impl RingConfig {
    /// A small test parameterization: `L = 6, Z = 4, S = 5, A = 3`.
    pub fn small_test() -> Self {
        RingConfig {
            levels: 6,
            real_slots: 4,
            dummy_slots: 5,
            evict_rate: 3,
            block_bytes: 64,
            payload_bytes: 8,
            stash_capacity: 220,
            temp_posmap_capacity: 96,
            wpq_capacity: 256,
            utilization: 0.5,
        }
    }

    /// A paper-comparable configuration (`L = 18`) for experiments.
    pub fn experiment() -> Self {
        RingConfig {
            levels: 18,
            ..Self::small_test()
        }
    }

    /// Physical slots per bucket (`Z + S`).
    pub fn bucket_physical_slots(&self) -> usize {
        self.real_slots + self.dummy_slots
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> u64 {
        1 << self.levels
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> u64 {
        (1u64 << (self.levels + 1)) - 1
    }

    /// Addressable logical blocks.
    pub fn capacity_blocks(&self) -> u64 {
        (self.num_buckets() as f64 * self.real_slots as f64 * self.utilization) as u64
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics on degenerate values (`S = 0` would forbid dummy reads, a
    /// WPQ smaller than one path breaks eviction atomicity).
    pub fn validate(&self) {
        assert!(self.levels >= 1 && self.levels < 40, "levels out of range");
        assert!(
            self.real_slots >= 1 && self.dummy_slots >= 1,
            "need real and dummy slots"
        );
        assert!(self.evict_rate >= 1, "evict rate must be positive");
        assert!(self.utilization > 0.0 && self.utilization <= 1.0);
        assert!(
            self.wpq_capacity >= self.bucket_physical_slots() * (self.levels as usize + 1),
            "WPQ must hold one full eviction path"
        );
    }
}

impl Default for RingConfig {
    fn default() -> Self {
        Self::small_test()
    }
}

pub use crate::engine::RingVariant;

use crate::bucket::RingBucket;

/// Statistics for a Ring ORAM controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingStats {
    /// Logical accesses served.
    pub accesses: u64,
    /// Evict-path operations performed.
    pub evictions: u64,
    /// Early reshuffles triggered by exhausted read budgets.
    pub early_reshuffles: u64,
    /// Dirty PosMap entries flushed (PS variant).
    pub dirty_entries_flushed: u64,
    /// High-water mark of stash occupancy.
    pub stash_max: usize,
    /// Crashes injected.
    pub crashes: u64,
    /// Recoveries performed.
    pub recoveries: u64,
    /// Recoveries that detected a consistency violation.
    pub recovery_failures: u64,
    /// Eviction rounds split early because a WPQ ran out of room.
    pub wpq_stalls: u64,
    /// Sum of per-access latencies (core cycles).
    pub total_access_cycles: u64,
}

impl psoram_obsv::MetricsSource for RingStats {
    fn publish(&self, prefix: &str, reg: &mut psoram_obsv::MetricsRegistry) {
        use psoram_obsv::MetricsRegistry as R;
        reg.set_counter(&R::key(prefix, "accesses"), self.accesses);
        reg.set_counter(&R::key(prefix, "evictions"), self.evictions);
        reg.set_counter(&R::key(prefix, "early_reshuffles"), self.early_reshuffles);
        reg.set_counter(
            &R::key(prefix, "dirty_entries_flushed"),
            self.dirty_entries_flushed,
        );
        reg.set_counter(&R::key(prefix, "stash_max"), self.stash_max as u64);
        reg.set_counter(&R::key(prefix, "crashes"), self.crashes);
        reg.set_counter(&R::key(prefix, "recoveries"), self.recoveries);
        reg.set_counter(&R::key(prefix, "recovery_failures"), self.recovery_failures);
        reg.set_counter(&R::key(prefix, "wpq_stalls"), self.wpq_stalls);
        reg.set_counter(
            &R::key(prefix, "total_access_cycles"),
            self.total_access_cycles,
        );
    }
}

/// A Ring ORAM controller over simulated NVM, optionally crash-consistent.
///
/// # Examples
///
/// ```
/// use psoram_core::ring::{RingConfig, RingOram, RingVariant};
/// use psoram_core::BlockAddr;
///
/// let mut oram = RingOram::new(RingConfig::small_test(), RingVariant::PsRing, 7);
/// oram.write(BlockAddr(3), vec![9; 8]).unwrap();
/// assert_eq!(oram.read(BlockAddr(3)).unwrap(), vec![9; 8]);
/// ```
#[derive(Debug)]
pub struct RingOram {
    config: RingConfig,
    variant: RingVariant,
    nvm: NvmController,
    buckets: HashMap<u64, RingBucket>,
    stash: Vec<Block>,
    posmap: PosMap,
    temp: TempPosMap,
    /// The shared persist-round engine: WPQ rounds, crash arming &
    /// scheduling, and the crash/recovery state machine.
    engine: PersistEngine<(u64, RingBucket), (BlockAddr, Leaf)>,
    rng: StdRng,
    clock: u64,
    access_counter: u64,
    /// Reverse-lexicographic eviction cursor.
    evict_cursor: u64,
    stats: RingStats,
    /// Written-vs-committed value ledgers (the recoverability oracle).
    ledger: CommitLedger,
    seq_counter: u64,
    /// Bucket rewrites begun in the current access ([`CrashPoint::
    /// DuringEviction`] indexes into this cursor).
    rewrites_this_access: usize,
    touched: Vec<u64>,
    /// On-chip CMAC tag store ([`RingOram::enable_device_faults`], PS-Ring
    /// only).
    auth: Option<AuthTags>,
    /// The freshness adversary's snapshot store: the previous version of
    /// every persist unit, recorded on overwrite. Present in device-fault
    /// mode on *every* variant (adversary state, not defense state).
    history: Option<UnitHistory>,
    /// Fetch-path freshness counters: stale serves injected on the read
    /// wire and how many the hardened verifier caught.
    freshness: FreshnessStats,
    /// `(bucket, slot)` units of the last applied persist round — the
    /// units device-fault damage lands on at a crash.
    last_round_slots: Vec<(u64, usize)>,
    /// Persisted-PosMap addresses of the last applied round.
    last_round_posmap: Vec<BlockAddr>,
    /// Reused per-access buffers (path/bucket addresses): the steady-state
    /// access loop performs no heap allocation for these.
    scratch: AccessScratch,
    /// Observability tap (detached by default; see [`RingOram::set_obsv_tap`]).
    obsv: Tap,
}

impl RingOram {
    /// Creates a Ring ORAM over a single-channel paper-default PCM memory.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn new(config: RingConfig, variant: RingVariant, seed: u64) -> Self {
        Self::with_nvm(config, variant, NvmConfig::paper_pcm(1), seed)
    }

    /// Creates a Ring ORAM over an explicit NVM configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn with_nvm(config: RingConfig, variant: RingVariant, nvm: NvmConfig, seed: u64) -> Self {
        config.validate();
        RingOram {
            posmap: PosMap::new(config.num_leaves(), seed ^ 0x52_49_4E_47),
            temp: TempPosMap::new(config.temp_posmap_capacity),
            engine: PersistEngine::new(config.wpq_capacity, config.wpq_capacity),
            rng: StdRng::seed_from_u64(seed),
            nvm: NvmController::new(nvm),
            buckets: HashMap::new(),
            stash: Vec::new(),
            clock: 0,
            access_counter: 0,
            evict_cursor: 0,
            stats: RingStats::default(),
            ledger: CommitLedger::new(),
            seq_counter: 0,
            rewrites_this_access: 0,
            touched: Vec::new(),
            auth: None,
            history: None,
            freshness: FreshnessStats::default(),
            last_round_slots: Vec::new(),
            last_round_posmap: Vec::new(),
            scratch: AccessScratch::default(),
            obsv: Tap::detached(),
            config,
            variant,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &RingConfig {
        &self.config
    }

    /// The persistence variant.
    pub fn variant(&self) -> RingVariant {
        self.variant
    }

    /// Controller statistics. The crash/recovery/stall counters live in
    /// the shared persist engine and are merged into the snapshot here.
    pub fn stats(&self) -> RingStats {
        let mut s = self.stats;
        let e = self.engine.stats();
        s.crashes = e.crashes;
        s.recoveries = e.recoveries;
        s.recovery_failures = e.recovery_failures;
        s.wpq_stalls = e.wpq_stalls;
        s
    }

    /// Accumulated statistics of the engine's (data, PosMap) WPQs.
    pub fn wpq_stats(&self) -> (psoram_nvm::WpqStats, psoram_nvm::WpqStats) {
        self.engine.wpq_stats()
    }

    /// The controller's core-cycle clock (advanced by `read`/`write`).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Installs an observability tap and cascades it into the persist
    /// engine (WPQ rounds) and the NVM controller (bank timing).
    pub fn set_obsv_tap(&mut self, tap: Tap) {
        self.engine.set_tap(tap.clone());
        self.nvm.set_tap(tap.clone());
        self.obsv = tap;
    }

    /// Convenience: attaches `recorder` behind a fresh shared tap.
    pub fn attach_obsv_recorder(&mut self, recorder: std::sync::Arc<dyn psoram_obsv::Recorder>) {
        self.set_obsv_tap(Tap::attached(recorder));
    }

    /// NVM traffic statistics.
    pub fn nvm_stats(&self) -> psoram_nvm::NvmStats {
        *self.nvm.stats()
    }

    /// The underlying NVM controller (timing state, wear map, ...).
    pub fn nvm(&self) -> &psoram_nvm::NvmController {
        &self.nvm
    }

    /// Current stash occupancy.
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Installs a seeded device-level fault plan on the NVM backend.
    ///
    /// Mirrors [`crate::PathOram::enable_device_faults`]: the hardened
    /// (WPQ) PS-Ring variant additionally arms the integrity layer — CMAC
    /// tags over every physical bucket slot and persisted PosMap entry,
    /// sealed WPQ batch frames, and a rolling seal over the temporary
    /// PosMap. The Baseline variant gets the same faults with no
    /// defenses, preserving the differential campaigns' detection power.
    pub fn enable_device_faults(&mut self, seed: u64, cfg: FaultConfig) {
        self.engine.install_fault_plan(seed, cfg);
        // The replay adversary's snapshot store goes on every variant —
        // the Baseline is replayed too, it just cannot tell.
        self.history = Some(UnitHistory::default());
        if self.variant != RingVariant::PsRing {
            return;
        }
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&seed.to_le_bytes());
        key[8..].copy_from_slice(&seed.rotate_left(17).to_le_bytes());
        key[0] ^= 0xA7;
        let mut auth = AuthTags::new(&key);
        // Retro-tag whatever already sits on media: everything written
        // before hardening is trusted as-is and covered from here on.
        // Tags deliberately cover slot *content* only — the valid bits
        // and counts are read-path metadata that mutates outside persist
        // rounds.
        let mut indices: Vec<u64> = self.buckets.keys().copied().collect();
        indices.sort_unstable();
        for bidx in indices {
            let bucket = &self.buckets[&bidx];
            for (s, slot) in bucket.slots.iter().enumerate() {
                auth.record_slot(bidx, s, slot.as_ref());
            }
        }
        for (a, l) in self.posmap.persisted_sorted() {
            auth.record_posmap(a, l);
        }
        auth.seal_temp(&self.temp.entries_sorted());
        self.engine.seal_frames(&key);
        // Anchor the counter-tree root in the persistence domain before
        // the first adversarial round.
        self.engine.persist_root(auth.root());
        self.auth = Some(auth);
    }

    /// Ground-truth injection counters of the installed fault plan, if any.
    pub fn device_fault_stats(&self) -> Option<FaultStats> {
        self.engine.fault_stats()
    }

    /// Arms the endurance adversary over the ring's NVM line region.
    ///
    /// Mirrors [`crate::PathOram::enable_wear`]: per-line write
    /// accounting with seeded cell budgets plus the chosen wear-leveling
    /// scheme, whose mapping changes stage against the durable state and
    /// commit only in the persist engine's commit round.
    pub fn enable_wear(&mut self, seed: u64, cfg: psoram_nvm::WearConfig) {
        let bytes = self.config.num_buckets()
            * self.config.bucket_physical_slots() as u64
            * self.config.block_bytes as u64;
        let lines = bytes.div_ceil(psoram_nvm::WEAR_LINE_BYTES).max(1);
        self.engine.enable_wear(seed, lines, cfg);
    }

    /// Wear/leveling counters of the armed endurance adversary, if any.
    pub fn wear_stats(&self) -> Option<psoram_nvm::WearStats> {
        self.engine.wear_stats()
    }

    /// The endurance adversary's engine (mapping, per-line writes), if armed.
    pub fn wear_engine(&self) -> Option<&psoram_nvm::WearEngine> {
        self.engine.wear_engine()
    }

    /// Fetch-path freshness counters: stale units the adversary served on
    /// the read wire, and how many the hardened verifier detected.
    pub fn freshness_stats(&self) -> FreshnessStats {
        self.freshness
    }

    /// The latched fail-safe class, if the controller is poisoned.
    pub fn poisoned(&self) -> Option<FaultClass> {
        self.engine.poisoned()
    }

    /// A deterministic digest over the controller's recoverable state:
    /// the materialized buckets (content, valid bits, counts), the
    /// persisted PosMap, and the committed ledger. The double-recover
    /// idempotency regression tests rely on it.
    pub fn state_digest(&self) -> u128 {
        let mut bytes = Vec::new();
        let mut indices: Vec<u64> = self.buckets.keys().copied().collect();
        indices.sort_unstable();
        for bidx in indices {
            let bucket = &self.buckets[&bidx];
            bytes.extend_from_slice(&bidx.to_le_bytes());
            for slot in &bucket.slots {
                match slot {
                    None => bytes.push(0),
                    Some(b) => {
                        bytes.push(1);
                        bytes.extend_from_slice(&b.header.addr.0.to_le_bytes());
                        bytes.extend_from_slice(&b.header.leaf.0.to_le_bytes());
                        bytes.extend_from_slice(&b.header.seq.to_le_bytes());
                        bytes.push(b.is_backup as u8);
                        bytes.extend_from_slice(&b.payload);
                    }
                }
            }
            for &v in &bucket.valid {
                bytes.push(v as u8);
            }
            bytes.extend_from_slice(&(bucket.count as u64).to_le_bytes());
        }
        for (a, l) in self.posmap.persisted_sorted() {
            bytes.extend_from_slice(&a.to_le_bytes());
            bytes.extend_from_slice(&l.to_le_bytes());
        }
        let mut committed: Vec<(u64, &Vec<u8>)> = self.ledger.committed_iter().collect();
        committed.sort_unstable_by_key(|&(a, _)| a);
        for (a, v) in committed {
            bytes.extend_from_slice(&a.to_le_bytes());
            bytes.extend_from_slice(v);
        }
        // Wear mode folds the durable line mapping in; with wear off the
        // digest is byte-for-byte what pre-endurance builds computed.
        if let Some(d) = self.engine.wear_digest() {
            bytes.extend_from_slice(&d.to_le_bytes());
        }
        u128::from_le_bytes(Hash128::new().digest(&bytes))
    }

    crate::engine::impl_crash_controls!();

    // ── geometry helpers ────────────────────────────────────────────────

    fn path_indices(&self, leaf: Leaf) -> Vec<u64> {
        (0..=self.config.levels)
            .map(|d| (1u64 << d) - 1 + (leaf.0 >> (self.config.levels - d)))
            .collect()
    }

    fn common_depth(&self, a: Leaf, b: Leaf) -> u32 {
        let diff = a.0 ^ b.0;
        if diff == 0 {
            self.config.levels
        } else {
            self.config.levels - (64 - diff.leading_zeros())
        }
    }

    fn slot_nvm_addr(&self, bucket: u64, slot: usize) -> u64 {
        (bucket * self.config.bucket_physical_slots() as u64 + slot as u64)
            * self.config.block_bytes as u64
    }

    fn lookup(&self, addr: BlockAddr) -> Leaf {
        self.temp.get(addr).unwrap_or_else(|| self.posmap.get(addr))
    }

    fn stash_primary(&self, addr: BlockAddr) -> Option<usize> {
        self.stash
            .iter()
            .position(|b| !b.is_backup && b.addr() == addr)
    }

    // ── public access API ───────────────────────────────────────────────

    /// Reads block `addr` at the controller's own clock.
    ///
    /// # Errors
    ///
    /// Propagates any [`OramError`] from the access.
    pub fn read(&mut self, addr: BlockAddr) -> Result<Vec<u8>, OramError> {
        let arrival = self.clock;
        let (value, done) = self.access_at(addr, None, arrival)?;
        self.clock = done;
        Ok(value)
    }

    /// Writes `data` to block `addr`.
    ///
    /// # Errors
    ///
    /// Propagates any [`OramError`] from the access.
    pub fn write(&mut self, addr: BlockAddr, data: Vec<u8>) -> Result<(), OramError> {
        let arrival = self.clock;
        let (_, done) = self.access_at(addr, Some(data), arrival)?;
        self.clock = done;
        Ok(())
    }

    /// Performs one access; returns the value and the completion cycle.
    ///
    /// # Errors
    ///
    /// * [`OramError::Crashed`] — an injected crash fired.
    /// * [`OramError::AddressOutOfRange`] / [`OramError::PayloadSize`] on
    ///   invalid requests.
    pub fn access_at(
        &mut self,
        addr: BlockAddr,
        data: Option<Vec<u8>>,
        arrival: u64,
    ) -> Result<(Vec<u8>, u64), OramError> {
        self.engine.begin_attempt()?;
        if addr.0 >= self.config.capacity_blocks() {
            return Err(OramError::AddressOutOfRange {
                addr,
                capacity: self.config.capacity_blocks(),
            });
        }
        if let Some(d) = &data {
            if d.len() != self.config.payload_bytes {
                return Err(OramError::PayloadSize {
                    expected: self.config.payload_bytes,
                    got: d.len(),
                });
            }
        }
        self.stats.accesses += 1;
        self.access_counter += 1;
        self.rewrites_this_access = 0;
        self.touched.push(addr.0);
        let access_index = self.stats.accesses - 1;
        self.obsv.set_now(arrival);
        self.obsv.emit(|| Event::AccessStart {
            index: access_index,
            cycle: arrival,
        });

        let mut t = arrival + 1; // stash lookup

        // Step ②: PosMap + remap.
        let old_leaf = self.lookup(addr);
        let new_leaf = Leaf(self.rng.gen_range(0..self.config.num_leaves()));
        match self.variant {
            RingVariant::Baseline => self.posmap.set(addr, new_leaf),
            RingVariant::PsRing => self.temp.insert(addr, new_leaf)?,
        }
        if let Some(auth) = &mut self.auth {
            auth.seal_temp(&self.temp.entries_sorted());
        }
        t += 2;
        self.obsv.set_now(t);
        self.obsv.emit(|| Event::Phase {
            phase: Phase::PosMap,
            start: arrival,
            end: t,
        });
        self.maybe_crash(CrashPoint::AfterAccessPosMap)?;

        // Step ③: read exactly one slot per bucket along the path.
        // Transient media read errors (device-fault mode): bounded retry
        // with exponential backoff re-issues the path read; a stuck line
        // exhausts the retries and latches the fail-safe poisoned state.
        match self.engine.read_fault() {
            ReadFault::None => {}
            ReadFault::Transient { attempts } => {
                for k in 0..attempts {
                    t += 400 << k;
                }
                self.obsv.set_now(t);
                self.obsv.emit(|| Event::FaultDetected {
                    kind: psoram_obsv::DeviceFaultKind::TransientRead,
                    units: u64::from(attempts),
                    cycle: t,
                });
            }
            ReadFault::Stuck => {
                self.engine.poison(FaultClass::TransientRead);
                return Err(OramError::Poisoned {
                    class: FaultClass::TransientRead,
                });
            }
        }
        let t_before_path = t;
        // Freshness adversary on the read wire (device-fault mode): the
        // device may serve one of this access's read slots from an
        // authentic-but-stale snapshot. The draw always consumes plan
        // entropy (schedule invariance); it only lands when a read slot
        // actually has recorded history.
        let replay_pick = self.engine.read_replay();
        let in_stash = self.stash_primary(addr).is_some();
        let path = self.path_indices(old_leaf);
        let mut read_addrs = std::mem::take(&mut self.scratch.read_addrs);
        read_addrs.clear();
        let mut fetched: Option<Block> = None;
        let mut fetched_from: Option<(u64, usize)> = None;
        let mut read_units: Vec<(u64, usize)> = Vec::new();
        for &bidx in &path {
            let slot = {
                let rng = &mut self.rng;
                let bucket = self.buckets.get(&bidx);
                match bucket {
                    Some(b) => {
                        let hit = if in_stash || fetched.is_some() {
                            None
                        } else {
                            b.find_valid(addr)
                        };
                        hit.or_else(|| b.random_valid_dummy(rng))
                    }
                    None => None,
                }
            };
            let physical = self.config.bucket_physical_slots();
            let b = self
                .buckets
                .entry(bidx)
                .or_insert_with(|| RingBucket::new(physical));
            // Brand-new (all-dummy, all-valid) bucket: read slot 0.
            let slot = slot.unwrap_or_default();
            if b.valid[slot] {
                if let Some(block) = &b.slots[slot] {
                    if block.addr() == addr && !block.is_backup {
                        fetched = Some(block.clone());
                        fetched_from = Some((bidx, slot));
                    }
                }
                b.valid[slot] = false;
                b.count += 1;
            }
            read_units.push((bidx, slot));
            read_addrs.push(self.slot_nvm_addr(bidx, slot));
        }
        let done = self
            .nvm
            .access_batch(read_addrs.iter().copied(), AccessKind::Read, to_mem(t));
        self.scratch.read_addrs = read_addrs;
        t = to_core(done) + 1;
        // Endurance adversary (wear mode): mirrors the Path controller —
        // drift failures on the hottest read line retry with backoff, a
        // stuck conviction retires onto a spare (repaired from the
        // redundant copy), and a dry spare pool latches fail-safe poison.
        match self.engine.wear_read_fault(&self.scratch.read_addrs) {
            WearReadOutcome::None => {}
            WearReadOutcome::Transient { attempts } => {
                for k in 0..attempts {
                    t += 400 << k;
                }
                self.obsv.set_now(t);
                self.obsv.emit(|| Event::FaultDetected {
                    kind: psoram_obsv::DeviceFaultKind::WearOut,
                    units: u64::from(attempts),
                    cycle: t,
                });
            }
            WearReadOutcome::Retired { line, spare } => {
                t += 800;
                self.obsv.set_now(t);
                self.obsv.emit(|| Event::FaultDetected {
                    kind: psoram_obsv::DeviceFaultKind::WearOut,
                    units: 1,
                    cycle: t,
                });
                self.obsv.emit(|| Event::LineRetired {
                    line,
                    spare,
                    cycle: t,
                });
            }
            WearReadOutcome::Exhausted { .. } => {
                self.engine.poison(FaultClass::WearOut);
                return Err(OramError::Poisoned {
                    class: FaultClass::WearOut,
                });
            }
        }
        // Resolve the wire-replay draw against what was actually read.
        let mut serve_stale: Option<crate::auth::StaleServe> = None;
        if let Some(pick) = replay_pick {
            if let Some(history) = self.history.as_ref() {
                let candidates: Vec<(u64, usize)> = read_units
                    .iter()
                    .copied()
                    .filter(|&(b, s)| history.slot(b, s).is_some())
                    .collect();
                if !candidates.is_empty() {
                    let (bidx, slot) = candidates[(pick % candidates.len() as u64) as usize];
                    if let Some((content, meta)) = history.slot(bidx, slot) {
                        serve_stale = Some(((bidx, slot), content.clone(), *meta));
                    }
                }
            }
            if serve_stale.is_some() {
                self.engine.confirm_read_replay();
                self.freshness.stale_serves += 1;
            }
        }
        // Hardened wire verification: every read slot's (content, record)
        // pair — including whatever the wire served — must classify Clean
        // against the on-chip counters. The CMAC checks overlap the
        // existing read pipeline; only detections cost extra cycles.
        if let Some(auth) = &self.auth {
            let mut wire_verdict = FreshnessVerdict::Clean;
            for &(bidx, slot) in &read_units {
                let served = serve_stale
                    .as_ref()
                    .filter(|((sb, ss), _, _)| (*sb, *ss) == (bidx, slot));
                let verdict = match served {
                    Some((_, content, meta)) => {
                        auth.classify_served_slot(bidx, slot, content.as_ref(), meta.as_ref())
                    }
                    None => {
                        let stored = self.buckets.get(&bidx).and_then(|b| b.slots[slot].as_ref());
                        auth.verdict_slot(bidx, slot, stored)
                    }
                };
                if verdict == FreshnessVerdict::Clean {
                    continue;
                }
                if served.is_some() {
                    wire_verdict = verdict;
                } else if let Some(class) = verdict.fault_class() {
                    // Stored state failing freshness outside a recovery
                    // pass: fail safe rather than serve it.
                    self.freshness.fetch_poisons += 1;
                    self.engine.poison(class);
                    return Err(OramError::Poisoned { class });
                }
            }
            if let Some(class) = wire_verdict.fault_class() {
                // Caught on the wire: one re-issue round trip, then the
                // true copy is read instead of the replayed one.
                self.freshness.stale_serves_detected += 1;
                t += 400;
                self.obsv.set_now(t);
                self.obsv.emit(|| Event::FaultDetected {
                    kind: crate::engine::fault_kind(class),
                    units: 1,
                    cycle: t,
                });
                serve_stale = None;
            }
        }
        // An undetected stale serve (Baseline) replaces the fetched bytes:
        // the controller consumes what the wire delivered.
        if let Some(((sb, ss), content, _)) = &serve_stale {
            if fetched_from == Some((*sb, *ss)) {
                fetched = content.clone().filter(|b| b.addr() == addr && !b.is_backup);
            }
        }
        // One combined metadata write per access (valid bits + counts).
        let meta = self.nvm.access_sized(
            self.slot_nvm_addr(path[0], 0),
            AccessKind::Write,
            to_mem(t),
            8,
        );
        let _ = meta; // metadata write retires in the background
        self.obsv.set_now(t);
        self.obsv.emit(|| Event::Phase {
            phase: Phase::LoadPath,
            start: t_before_path,
            end: t,
        });
        self.maybe_crash(CrashPoint::AfterLoadPath)?;

        // Step ④: stash update.
        self.seq_counter += 1;
        let seq = self.seq_counter;
        if let Some(idx) = self.stash_primary(addr) {
            self.stash[idx].header.leaf = new_leaf;
            self.stash[idx].header.seq = seq;
        } else {
            let mut block = fetched.unwrap_or_else(|| {
                Block::new(addr, new_leaf, vec![0u8; self.config.payload_bytes])
            });
            block.header.leaf = new_leaf;
            block.header.seq = seq;
            block.is_backup = false;
            self.stash.push(block);
        }
        if let Some(d) = data {
            let idx = self.stash_primary(addr).ok_or(OramError::Invariant {
                context: "stash primary present after update",
            })?;
            self.stash[idx].payload = d;
        }
        let idx = self.stash_primary(addr).ok_or(OramError::Invariant {
            context: "stash primary present after update",
        })?;
        let value = self.stash[idx].payload.clone();
        self.ledger.note_written(addr.0, value.clone());
        if self.stash.len() > self.config.stash_capacity {
            return Err(OramError::StashOverflow {
                capacity: self.config.stash_capacity,
            });
        }
        self.stats.stash_max = self.stats.stash_max.max(self.stash.len());
        let value_ready = t + 2;
        self.obsv.set_now(value_ready);
        self.obsv.emit(|| Event::Phase {
            phase: Phase::UpdateStash,
            start: t,
            end: value_ready,
        });
        self.obsv.emit(|| Event::AccessEnd {
            index: access_index,
            cycle: value_ready,
        });
        self.maybe_crash(CrashPoint::AfterUpdateStash)?;

        // Step ⑤: early reshuffles, then the periodic evict-path.
        let exhausted: Vec<u64> = path
            .iter()
            .copied()
            .filter(|b| {
                self.buckets
                    .get(b)
                    .is_some_and(|bk| bk.count >= self.config.dummy_slots)
            })
            .collect();
        let mut t_bg = value_ready;
        for bidx in exhausted {
            t_bg = self.reshuffle_bucket(bidx, t_bg)?;
            self.stats.early_reshuffles += 1;
        }
        if self.access_counter.is_multiple_of(self.config.evict_rate) {
            t_bg = self.evict_path(t_bg)?;
        }
        let _background_done = t_bg;
        self.obsv.set_now(t_bg);
        self.obsv.emit(|| Event::Phase {
            phase: Phase::Eviction,
            start: value_ready,
            end: t_bg,
        });
        self.maybe_crash(CrashPoint::AfterEviction)?;

        self.stats.total_access_cycles += value_ready - arrival;
        Ok((value, value_ready.max(value_ready)))
    }

    /// Classifies a physically present block during a bucket rewrite.
    /// Returns the block to retain in the new bucket image, if any.
    fn classify_for_rewrite(&self, block: Block) -> Option<Block> {
        let a = block.addr();
        let in_stash = self.stash_primary(a).is_some();
        let current = self.lookup(a);
        let stale = in_stash || block.leaf() != current || block.is_backup;
        if !stale {
            let mut b = block;
            b.is_backup = false;
            return Some(b);
        }
        if self.variant == RingVariant::PsRing && block.leaf() == self.posmap.persisted_get(a) {
            // Live shadow: the only recoverable copy of a stash-resident
            // block. Keep it (flagged) so the rewrite does not destroy it.
            let mut b = block;
            b.is_backup = true;
            return Some(b);
        }
        None
    }

    /// Rewrites one bucket in place (early reshuffle).
    fn reshuffle_bucket(&mut self, bidx: u64, t: u64) -> Result<u64, OramError> {
        let physical = self.config.bucket_physical_slots();
        let old = self
            .buckets
            .get(&bidx)
            .cloned()
            .unwrap_or_else(|| RingBucket::new(physical));
        // Read the real blocks still present (the permutation metadata
        // tells the controller which slots those are), rebuild, write the
        // whole bucket back.
        let mut read_addrs = std::mem::take(&mut self.scratch.read_addrs);
        read_addrs.clear();
        read_addrs.extend(
            old.slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_some())
                .map(|(s, _)| self.slot_nvm_addr(bidx, s)),
        );
        let done = self
            .nvm
            .access_batch(read_addrs.iter().copied(), AccessKind::Read, to_mem(t));
        self.scratch.read_addrs = read_addrs;
        let t = to_core(done);

        let keep: Vec<Block> = old
            .real_blocks()
            .into_iter()
            .filter_map(|b| self.classify_for_rewrite(b))
            .collect();
        debug_assert!(keep.len() <= self.config.real_slots);
        let fresh = RingBucket::from_blocks(keep, physical, &mut self.rng);
        self.commit_rewrites(vec![(bidx, fresh)], Vec::new(), t)
    }

    /// The periodic evict-path: deterministic reverse-lexicographic leaf,
    /// all buckets on the path rebuilt and committed atomically.
    fn evict_path(&mut self, t: u64) -> Result<u64, OramError> {
        self.stats.evictions += 1;
        let leaf =
            Leaf(bit_reverse(self.evict_cursor, self.config.levels) % self.config.num_leaves());
        self.evict_cursor += 1;
        let path = self.path_indices(leaf);
        let physical = self.config.bucket_physical_slots();
        let z = self.config.real_slots;

        // Fetch the real blocks present on the path (slot positions are
        // known from the per-bucket permutation metadata).
        let mut read_addrs = std::mem::take(&mut self.scratch.read_addrs);
        read_addrs.clear();
        for &bidx in &path {
            if let Some(bucket) = self.buckets.get(&bidx) {
                for (s, slot) in bucket.slots.iter().enumerate() {
                    if slot.is_some() {
                        read_addrs.push(self.slot_nvm_addr(bidx, s));
                    }
                }
            }
        }
        let done = self
            .nvm
            .access_batch(read_addrs.iter().copied(), AccessKind::Read, to_mem(t));
        self.scratch.read_addrs = read_addrs;
        let t = to_core(done);

        // Pool: shadows stay pinned to their bucket; primaries join the
        // stash for (re-)placement. Primaries pulled off their *persisted*
        // position are remembered: if placement cannot fit them back on the
        // path, the rewrite below would destroy the only recoverable copy.
        let mut pinned: HashMap<u64, Vec<Block>> = HashMap::new();
        let mut pulled_src: HashMap<u64, usize> = HashMap::new();
        for (pos, &bidx) in path.iter().enumerate() {
            let old = self
                .buckets
                .get(&bidx)
                .cloned()
                .unwrap_or_else(|| RingBucket::new(physical));
            for block in old.real_blocks() {
                match self.classify_for_rewrite(block) {
                    Some(b) if b.is_backup => pinned.entry(bidx).or_default().push(b),
                    Some(b) => {
                        if self.variant == RingVariant::PsRing
                            && b.leaf() == self.posmap.persisted_get(b.addr())
                        {
                            pulled_src.insert(b.addr().0, pos);
                        }
                        self.stash.push(b);
                    }
                    None => {}
                }
            }
        }
        // Dedup: fetching may have re-added primaries already in the stash.
        self.dedup_stash();

        // Greedy deepest-first placement of stash blocks into the path.
        let mut per_bucket: HashMap<u64, Vec<Block>> = pinned;
        let mut remaining: Vec<Block> = std::mem::take(&mut self.stash);
        remaining.sort_by_key(|b| std::cmp::Reverse(self.common_depth(b.leaf(), leaf)));
        let mut leftovers = Vec::new();
        for block in remaining {
            let max_d = self.common_depth(block.leaf(), leaf) as usize;
            let mut placed = false;
            for d in (0..=max_d).rev() {
                let bidx = path[d];
                let used = per_bucket.get(&bidx).map_or(0, Vec::len);
                if used < z {
                    per_bucket.entry(bidx).or_default().push(block.clone());
                    placed = true;
                    break;
                }
            }
            if !placed {
                leftovers.push(block);
            }
        }
        // Live-shadow preservation for unplaceable blocks: a leftover whose
        // on-NVM copy sat at its persisted PosMap leaf on this path is about
        // to have that copy rewritten away while the block itself retreats to
        // the volatile stash — a crash before its next placement would lose
        // it. Pin a backup copy on the persisted path (the source bucket or
        // any ancestor with a free physical slot) inside this atomic round.
        if self.variant == RingVariant::PsRing {
            for b in &leftovers {
                let a = b.addr();
                if b.leaf() != self.posmap.persisted_get(a) {
                    continue;
                }
                let Some(&src_depth) = pulled_src.get(&a.0) else {
                    continue;
                };
                let spot = (0..=src_depth)
                    .rev()
                    .find(|&d| per_bucket.get(&path[d]).map_or(0, Vec::len) < physical);
                if let Some(d) = spot {
                    let mut shadow = b.clone();
                    shadow.is_backup = true;
                    per_bucket.entry(path[d]).or_default().push(shadow);
                }
            }
        }
        self.stash = leftovers;
        self.stats.stash_max = self.stats.stash_max.max(self.stash.len());

        // Build fresh buckets and the dirty posmap entries travelling with
        // this atomic round.
        let mut rewrites = Vec::with_capacity(path.len());
        let mut flushes = Vec::new();
        for &bidx in &path {
            let blocks = per_bucket.remove(&bidx).unwrap_or_default();
            for b in &blocks {
                if !b.is_backup {
                    if let Some(l) = self.temp.get(b.addr()) {
                        flushes.push((b.addr(), l));
                    }
                }
            }
            rewrites.push((
                bidx,
                RingBucket::from_blocks(blocks, physical, &mut self.rng),
            ));
        }
        self.commit_rewrites(rewrites, flushes, t)
    }

    fn dedup_stash(&mut self) {
        let mut best: HashMap<u64, (u64, usize)> = HashMap::new();
        for (i, b) in self.stash.iter().enumerate() {
            if b.is_backup {
                continue;
            }
            let e = best.entry(b.addr().0).or_insert((b.header.seq, i));
            if b.header.seq > e.0 {
                *e = (b.header.seq, i);
            }
        }
        let keep: Vec<usize> = best.values().map(|&(_, i)| i).collect();
        let mut i = 0;
        self.stash.retain(|b| {
            let k = b.is_backup || keep.contains(&i);
            i += 1;
            k
        });
    }

    /// Commits a set of bucket rewrites (and their posmap flushes) as one
    /// atomic round — through the WPQ for PS-Ring, directly for Baseline —
    /// then issues the NVM writes.
    fn commit_rewrites(
        &mut self,
        rewrites: Vec<(u64, RingBucket)>,
        flushes: Vec<(BlockAddr, Leaf)>,
        t: u64,
    ) -> Result<u64, OramError> {
        let physical = self.config.bucket_physical_slots();
        // Crash during the rewrite assembly?
        if let Some(k) = self.engine.armed_eviction_crash() {
            if k == self.rewrites_this_access {
                self.engine.disarm_crash();
                if self.variant == RingVariant::PsRing {
                    // Round assembled but the end signal never arrives, so
                    // the crash discards it.
                    let entries = rewrites
                        .iter()
                        .map(|(bidx, bucket)| WpqEntry {
                            addr: self.slot_nvm_addr(*bidx, 0),
                            value: (*bidx, bucket.clone()),
                        })
                        .collect();
                    self.engine.stage_abandoned_round(entries);
                } else {
                    // Direct writes: half the buckets land, half do not.
                    for (bidx, bucket) in rewrites.iter().take(rewrites.len() / 2) {
                        self.buckets.insert(*bidx, bucket.clone());
                    }
                }
                self.execute_crash();
                return Err(OramError::Crashed);
            }
        }
        self.rewrites_this_access += 1;
        self.obsv.set_now(t);

        let mut write_addrs = std::mem::take(&mut self.scratch.write_addrs);
        write_addrs.clear();
        for (bidx, _) in &rewrites {
            for s in 0..physical {
                write_addrs.push(self.slot_nvm_addr(*bidx, s));
            }
        }

        match self.variant {
            RingVariant::Baseline => {
                let device = self.engine.device_mode();
                if device {
                    self.last_round_slots.clear();
                }
                for (bidx, bucket) in rewrites {
                    if device {
                        for s in 0..physical {
                            self.last_round_slots.push((bidx, s));
                        }
                    }
                    self.apply_rewrite(bidx, bucket);
                }
            }
            RingVariant::PsRing => {
                // The temporary PosMap feeds this round's flushes; a seal
                // mismatch means its backing store rotted and nothing the
                // round would persist can be trusted. Fail safe.
                if let Some(auth) = &self.auth {
                    if !auth.verify_temp(&self.temp.entries_sorted()) {
                        self.engine.poison(FaultClass::MediaCorruption);
                        return Err(OramError::Poisoned {
                            class: FaultClass::MediaCorruption,
                        });
                    }
                }
                self.engine.begin_round()?;
                for (bidx, bucket) in &rewrites {
                    // Out of room mid-round: stall — commit and apply what is
                    // already pushed (still atomic), then reopen and retry.
                    if self.engine.data_is_full() {
                        self.engine.note_stall();
                        self.commit_and_apply_round()?;
                        self.engine.begin_round()?;
                    }
                    self.engine.push_data(WpqEntry {
                        addr: self.slot_nvm_addr(*bidx, 0),
                        value: (*bidx, bucket.clone()),
                    })?;
                }
                for &(a, l) in &flushes {
                    if self.engine.posmap_is_full() {
                        self.engine.note_stall();
                        self.commit_and_apply_round()?;
                        self.engine.begin_round()?;
                    }
                    self.engine.push_posmap(WpqEntry {
                        addr: a.0 * 8,
                        value: (a, l),
                    })?;
                }
                self.commit_and_apply_round()?;
                self.refresh_ledger_for(&flushes);
            }
        }

        write_addrs.sort_unstable();
        let done = self
            .nvm
            .access_batch(write_addrs.iter().copied(), AccessKind::Write, to_mem(t));
        self.scratch.write_addrs = write_addrs;
        Ok(to_core(done))
    }

    /// Sends the drainer `end` signal and applies the drained round to the
    /// bucket store and PosMap.
    fn commit_and_apply_round(&mut self) -> Result<(), OramError> {
        self.engine.commit_round()?;
        let (data, posmap) = self.engine.drain();
        let device = self.engine.device_mode() && !(data.is_empty() && posmap.is_empty());
        if device {
            // This round becomes the one whose media programming a crash
            // would interrupt.
            self.last_round_slots.clear();
            self.last_round_posmap.clear();
        }
        let physical = self.config.bucket_physical_slots();
        for e in data {
            let (bidx, bucket) = e.value;
            if device {
                for s in 0..physical {
                    self.last_round_slots.push((bidx, s));
                }
            }
            self.apply_rewrite(bidx, bucket);
        }
        let mut flushed = false;
        for e in posmap {
            let (a, l) = e.value;
            if self.history.is_some() {
                let prev_leaf = self.posmap.persisted_get(a);
                let prev_meta = self.auth.as_ref().and_then(|x| x.posmap_record(a.0));
                if let Some(h) = self.history.as_mut() {
                    h.note_posmap(a.0, prev_leaf, prev_meta);
                }
            }
            self.posmap.persist(a, l);
            self.temp.remove(a);
            if let Some(auth) = &mut self.auth {
                auth.record_posmap(a.0, l.0);
            }
            if device {
                self.last_round_posmap.push(a);
            }
            self.stats.dirty_entries_flushed += 1;
            flushed = true;
        }
        if flushed {
            if let Some(auth) = &mut self.auth {
                auth.seal_temp(&self.temp.entries_sorted());
            }
        }
        if let Some(auth) = &self.auth {
            // The counter-tree root rides the same failure-atomic commit
            // as the round's data.
            self.engine.persist_root(auth.root());
        }
        Ok(())
    }

    fn apply_rewrite(&mut self, bidx: u64, bucket: RingBucket) {
        // Ledger: every block written at its persisted position is now the
        // recoverable copy (PS variant only cares, but the data is cheap).
        for b in bucket.real_blocks() {
            let a = b.addr();
            if b.leaf() == self.posmap.persisted_get(a) {
                self.ledger
                    .commit_if_fresh(a.0, b.header.seq, b.payload.clone());
            }
        }
        if self.history.is_some() {
            // Snapshot every slot this rewrite replaces: the coherent
            // stale units a replay adversary re-serves.
            for s in 0..bucket.slots.len() {
                let prev_content = self
                    .buckets
                    .get(&bidx)
                    .and_then(|old| old.slots.get(s).cloned().flatten());
                let prev_meta = self.auth.as_ref().and_then(|a| a.slot_record(bidx, s));
                if let Some(h) = self.history.as_mut() {
                    h.note_slot(bidx, s, prev_content, prev_meta);
                }
            }
        }
        if let Some(auth) = &mut self.auth {
            for (s, slot) in bucket.slots.iter().enumerate() {
                auth.record_slot(bidx, s, slot.as_ref());
            }
        }
        self.buckets.insert(bidx, bucket);
    }

    /// After posmap flushes commit, re-evaluate the flushed addresses: the
    /// copy matching the *new* persisted leaf becomes recoverable.
    fn refresh_ledger_for(&mut self, flushes: &[(BlockAddr, Leaf)]) {
        for &(a, _) in flushes {
            let leaf = self.posmap.persisted_get(a);
            let mut best: Option<(u64, Vec<u8>)> = None;
            for idx in self.path_indices(leaf) {
                if let Some(bucket) = self.buckets.get(&idx) {
                    for b in bucket.real_blocks() {
                        if b.addr() == a
                            && b.leaf() == leaf
                            && best.as_ref().is_none_or(|(s, _)| b.header.seq > *s)
                        {
                            best = Some((b.header.seq, b.payload.clone()));
                        }
                    }
                }
            }
            if let Some((seq, payload)) = best {
                self.ledger.commit_if_fresh(a.0, seq, payload);
            }
        }
    }

    // ── crash & recovery ────────────────────────────────────────────────

    /// Immediately executes a power failure.
    pub fn crash_now(&mut self) {
        self.execute_crash();
    }

    fn execute_crash(&mut self) {
        // ADR flushes committed WPQ rounds; open rounds are lost. The
        // engine latches the crashed state and counts the crash.
        let (data, posmap) = self.engine.crash();
        let device = self.engine.device_mode() && !(data.is_empty() && posmap.is_empty());
        if device {
            self.last_round_slots.clear();
            self.last_round_posmap.clear();
        }
        let physical = self.config.bucket_physical_slots();
        for e in data {
            let (bidx, bucket) = e.value;
            if device {
                for s in 0..physical {
                    self.last_round_slots.push((bidx, s));
                }
            }
            self.apply_rewrite(bidx, bucket);
        }
        let flushes: Vec<(BlockAddr, Leaf)> = posmap.iter().map(|e| e.value).collect();
        for &(a, l) in &flushes {
            if self.history.is_some() {
                let prev_leaf = self.posmap.persisted_get(a);
                let prev_meta = self.auth.as_ref().and_then(|x| x.posmap_record(a.0));
                if let Some(h) = self.history.as_mut() {
                    h.note_posmap(a.0, prev_leaf, prev_meta);
                }
            }
            self.posmap.persist(a, l);
            if let Some(auth) = &mut self.auth {
                auth.record_posmap(a.0, l.0);
            }
            if device {
                self.last_round_posmap.push(a);
            }
        }
        self.refresh_ledger_for(&flushes);
        self.stash.clear();
        self.temp.wipe();
        self.posmap.crash();
        // Device faults: the power failure interrupts the media programming
        // of the last applied round (including anything the ADR flush just
        // applied above) — torn flushes, lost signals, and bit rot land on
        // those units now, behind the controller's back.
        if self.engine.device_mode() {
            let damage = self
                .engine
                .draw_crash_damage(self.last_round_slots.len(), self.last_round_posmap.len());
            self.apply_device_damage(&damage);
        }
    }

    /// Applies drawn device damage to the NVM image: flips a payload (or
    /// header) bit of each damaged bucket slot and corrupts each damaged
    /// persisted PosMap entry. Tags are deliberately *not* refreshed —
    /// this is the adversary writing behind the controller's back.
    fn apply_device_damage(&mut self, damage: &RoundDamage) {
        for &i in &damage.data_units {
            let (bidx, slot) = self.last_round_slots[i];
            let has_block = self
                .buckets
                .get(&bidx)
                .is_some_and(|b| b.slots[slot].is_some());
            if !has_block {
                // Torn programming of a dummy slot has no observable
                // content to corrupt.
                continue;
            }
            let e = self.engine.device_entropy();
            if let Some(blk) = self
                .buckets
                .get_mut(&bidx)
                .and_then(|b| b.slots[slot].as_mut())
            {
                if blk.payload.is_empty() {
                    blk.header.iv1 ^= 1 | e;
                } else {
                    let idx = e as usize % blk.payload.len();
                    blk.payload[idx] ^= 1 << ((e >> 32) & 7);
                }
            }
        }
        for &i in &damage.posmap_units {
            let addr = self.last_round_posmap[i];
            let e = self.engine.device_entropy();
            self.posmap.corrupt_persisted(addr, e);
        }
        self.apply_freshness_damage(damage);
    }

    /// Applies the freshness adversary's share of the drawn crash damage:
    /// replays restore a unit's recorded previous `(content, record)`
    /// pair wholesale (coherent but stale — only the trusted counter can
    /// tell), and splices swap two authentic units across addresses.
    /// Applied after the bit flips, so a replay also overwrites any flip
    /// that landed on the same unit. A splice is only coherent when both
    /// ends are distinct units that still carry authentic records — a
    /// drawn pair that collapses onto one media unit, or whose record
    /// was already destroyed by bit rot, is a no-op the engine never
    /// counts (the confirm calls are the ground truth).
    fn apply_freshness_damage(&mut self, damage: &RoundDamage) {
        if self.history.is_none() {
            return;
        }
        let restored_slot = if let Some(i) = damage.replayed_data {
            let (bidx, slot) = self.last_round_slots[i];
            let prev = self
                .history
                .as_ref()
                .and_then(|h| h.slot(bidx, slot).cloned());
            if let Some((content, meta)) = prev {
                if let Some(bucket) = self.buckets.get_mut(&bidx) {
                    bucket.slots[slot] = content;
                }
                if let Some(auth) = self.auth.as_mut() {
                    auth.set_slot_record(bidx, slot, meta);
                }
                self.engine.confirm_stale_replay();
                Some((bidx, slot))
            } else {
                None
            }
        } else {
            None
        };
        let restored_addr = if let Some(i) = damage.replayed_posmap {
            let addr = self.last_round_posmap[i];
            let prev = self
                .history
                .as_ref()
                .and_then(|h| h.posmap(addr.0).copied());
            if let Some((leaf, meta)) = prev {
                self.posmap.overwrite_persisted(addr, leaf);
                if let Some(auth) = self.auth.as_mut() {
                    auth.set_posmap_record(addr.0, meta);
                }
                self.engine.confirm_stale_replay();
                Some(addr)
            } else {
                None
            }
        } else {
            None
        };
        if let Some((i, j)) = damage.spliced_data {
            let (b1, s1) = self.last_round_slots[i];
            let (b2, s2) = self.last_round_slots[j];
            // A bit-rotted end no longer carries an authentic record —
            // unless the replay above just overwrote the rot wholesale.
            let rotted = |c: (u64, usize)| {
                restored_slot != Some(c)
                    && damage
                        .data_units
                        .iter()
                        .any(|&k| self.last_round_slots[k] == c)
            };
            if (b1, s1) != (b2, s2) && !rotted((b1, s1)) && !rotted((b2, s2)) {
                let c1 = self.buckets.get(&b1).and_then(|b| b.slots[s1].clone());
                let c2 = self.buckets.get(&b2).and_then(|b| b.slots[s2].clone());
                if let Some(bucket) = self.buckets.get_mut(&b1) {
                    bucket.slots[s1] = c2;
                }
                if let Some(bucket) = self.buckets.get_mut(&b2) {
                    bucket.slots[s2] = c1;
                }
                if let Some(auth) = self.auth.as_mut() {
                    let r1 = auth.slot_record(b1, s1);
                    let r2 = auth.slot_record(b2, s2);
                    auth.set_slot_record(b1, s1, r2);
                    auth.set_slot_record(b2, s2, r1);
                }
                self.engine.confirm_cross_splice();
            }
        }
        if let Some((i, j)) = damage.spliced_posmap {
            let a1 = self.last_round_posmap[i];
            let a2 = self.last_round_posmap[j];
            let rotted = |a: BlockAddr| {
                restored_addr != Some(a)
                    && damage
                        .posmap_units
                        .iter()
                        .any(|&k| self.last_round_posmap[k] == a)
            };
            if a1 != a2 && !rotted(a1) && !rotted(a2) {
                let l1 = self.posmap.persisted_get(a1);
                let l2 = self.posmap.persisted_get(a2);
                self.posmap.overwrite_persisted(a1, l2);
                self.posmap.overwrite_persisted(a2, l1);
                if let Some(auth) = self.auth.as_mut() {
                    let r1 = auth.posmap_record(a1.0);
                    let r2 = auth.posmap_record(a2.0);
                    auth.set_posmap_record(a1.0, r2);
                    auth.set_posmap_record(a2.0, r1);
                }
                self.engine.confirm_cross_splice();
            }
        }
    }

    /// Recovers after a crash: revalidates consumed slots (the paper's
    /// Case-2 procedure — the bytes never left the bucket), promotes the
    /// newest PosMap-consistent copy of each address back to primary
    /// status, and compacts superseded duplicates. Returns a
    /// [`RecoveryReport`] with the consistency verdict and, on failure,
    /// the violation text (also retained in [`RingOram::last_recovery`]).
    ///
    /// With device faults enabled on PS-Ring, recovery runs the full
    /// detect → classify → repair → fail-safe pipeline first: a CMAC scan
    /// wipes slots and PosMap entries that fail authentication, each
    /// damaged committed address is restored from its newest surviving
    /// authenticated copy, and addresses with no surviving copy are
    /// rolled back with a typed [`RecoveryError`] instead of serving
    /// corrupt data.
    ///
    /// Idempotent: calling `recover` on a controller that is not crashed
    /// repeats the last verdict without touching state or counters.
    pub fn recover(&mut self) -> RecoveryReport {
        if !self.engine.is_crashed() {
            return self.last_recovery().cloned().unwrap_or_else(|| {
                RecoveryReport::from_check(Ok(()), self.ledger.committed_len())
            });
        }
        let incidents = self.engine.take_incidents();
        let mut errors: Vec<RecoveryError> = Vec::new();
        let mut repairs = 0u64;
        let mut rolled_back: Vec<u64> = Vec::new();
        let mut replays_detected = 0u64;
        let mut splices_detected = 0u64;
        let mut auth = self.auth.take();

        if let Some(auth) = auth.as_mut() {
            // Root sanity: the on-chip counter tree must agree with the
            // root anchored in the persistence domain. A mismatch means
            // the trusted anchor itself cannot be believed — fail safe.
            if self
                .engine
                .persisted_root()
                .is_some_and(|r| r != auth.root())
            {
                self.engine.poison(FaultClass::StaleReplay);
            }
            // Device phase 1 — detect & classify: every tagged slot is
            // classified against the trusted counters, worst evidence
            // first. A replayed or spliced unit is coherent (its CMAC
            // verifies) — only the counter comparison convicts it. Every
            // convicted slot is wiped; any committed value it held is
            // restored from an authenticated redundant copy in phase 3.
            for (bidx, slot) in auth.tagged_slots_sorted() {
                let content = self.buckets.get(&bidx).and_then(|b| b.slots[slot].clone());
                match auth.verdict_slot(bidx, slot, content.as_ref()) {
                    FreshnessVerdict::Clean => {}
                    verdict => {
                        match verdict {
                            FreshnessVerdict::Stale | FreshnessVerdict::Missing => {
                                replays_detected += 1;
                            }
                            FreshnessVerdict::Spliced => splices_detected += 1,
                            _ => {}
                        }
                        if let Some(bucket) = self.buckets.get_mut(&bidx) {
                            bucket.slots[slot] = None;
                        }
                        auth.record_slot(bidx, slot, None);
                    }
                }
            }
            // Device phase 2 — persisted PosMap entries: repair a corrupt,
            // replayed, or spliced leaf label from the newest
            // authenticated copy of the address (the redundant copy names
            // the true leaf, and its counter proves it fresher).
            for a in auth.tagged_posmap_sorted() {
                let addr = BlockAddr(a);
                let leaf = self.posmap.persisted_get(addr);
                match auth.verdict_posmap(a, leaf.0) {
                    FreshnessVerdict::Clean => continue,
                    FreshnessVerdict::Stale | FreshnessVerdict::Missing => replays_detected += 1,
                    FreshnessVerdict::Spliced => splices_detected += 1,
                    FreshnessVerdict::Tampered => {}
                }
                match self.newest_valid_copy(addr, auth) {
                    Some((_, _, copy)) => {
                        self.posmap.persist(addr, copy.leaf());
                        auth.record_posmap(a, copy.leaf().0);
                        repairs += 1;
                    }
                    None => {
                        // Accept the damaged label (re-tag it so the scan
                        // converges) and forget the committed value: typed
                        // data loss, never silent corruption.
                        auth.record_posmap(a, leaf.0);
                        self.ledger.rollback(a, None);
                        rolled_back.push(a);
                        errors.push(RecoveryError::UnrecoverableAddress {
                            addr: a,
                            detail: "posmap entry corrupt; no surviving authenticated copy"
                                .to_string(),
                        });
                    }
                }
            }
        }

        // Pass 1: find, per address, the newest copy matching the persisted
        // PosMap — that is the copy recovery designates as live. Buckets
        // are scanned in sorted order: the replay adversary can restore
        // byte-exact stale duplicates whose seq numbers tie, and the
        // winner of a tie must not depend on hash-map iteration order.
        let mut sorted_indices: Vec<u64> = self.buckets.keys().copied().collect();
        sorted_indices.sort_unstable();
        let mut best: HashMap<u64, (u64, u64, usize)> = HashMap::new();
        for &bidx in &sorted_indices {
            let bucket = &self.buckets[&bidx];
            for (s, slot) in bucket.slots.iter().enumerate() {
                if let Some(b) = slot {
                    if b.leaf() == self.posmap.persisted_get(b.addr()) {
                        let e = best.entry(b.addr().0).or_insert((b.header.seq, bidx, s));
                        if b.header.seq > e.0 {
                            *e = (b.header.seq, bidx, s);
                        }
                    }
                }
            }
        }
        // Pass 2: promote winners, drop superseded matching duplicates,
        // revalidate everything. Controller-initiated slot mutations are
        // legitimate writes, so their tags are refreshed. (Per-slot
        // outcomes depend only on `best`, but the scan stays sorted so
        // any future side effects inherit determinism.)
        for &bidx in &sorted_indices {
            let Some(bucket) = self.buckets.get_mut(&bidx) else {
                continue;
            };
            for (s, slot) in bucket.slots.iter_mut().enumerate() {
                if let Some(b) = slot {
                    let leaf = self.posmap.persisted_get(b.addr());
                    if b.leaf() == leaf {
                        match best.get(&b.addr().0) {
                            Some(&(_, wb, ws)) if (wb, ws) == (bidx, s) => {
                                if b.is_backup {
                                    b.is_backup = false;
                                    if let Some(auth) = auth.as_mut() {
                                        auth.record_slot(bidx, s, Some(&*b));
                                    }
                                }
                            }
                            _ => {
                                *slot = None;
                                if let Some(auth) = auth.as_mut() {
                                    auth.record_slot(bidx, s, None);
                                }
                            }
                        }
                    }
                }
            }
            for v in &mut bucket.valid {
                *v = true;
            }
            bucket.count = 0;
        }

        if let Some(auth) = auth.as_mut() {
            // Device phase 3 — repair-from-redundant-copy: every committed
            // address the audit can no longer find is re-pointed at its
            // newest surviving authenticated copy (promoted to primary);
            // addresses with none are rolled back with a typed error.
            for (a, detail) in self.audit_failures() {
                let addr = BlockAddr(a);
                match self.newest_valid_copy(addr, auth) {
                    Some((bidx, s, copy)) => {
                        let mut promoted = copy;
                        if promoted.is_backup {
                            promoted.is_backup = false;
                            if let Some(bucket) = self.buckets.get_mut(&bidx) {
                                bucket.slots[s] = Some(promoted.clone());
                            }
                            auth.record_slot(bidx, s, Some(&promoted));
                        }
                        let intact = self.ledger.committed_value(a) == Some(&promoted.payload);
                        self.posmap.persist(addr, promoted.leaf());
                        auth.record_posmap(a, promoted.leaf().0);
                        self.ledger
                            .rollback(a, Some((promoted.header.seq, promoted.payload.clone())));
                        if intact {
                            repairs += 1;
                        } else {
                            // The survivor is an older version: detected
                            // rollback, reported as typed loss.
                            rolled_back.push(a);
                            errors.push(RecoveryError::UnrecoverableAddress { addr: a, detail });
                        }
                    }
                    None => {
                        self.ledger.rollback(a, None);
                        rolled_back.push(a);
                        errors.push(RecoveryError::UnrecoverableAddress { addr: a, detail });
                    }
                }
            }
            // The temporary PosMap did not survive the power failure.
            auth.clear_temp_seal();
            // Close the freshness epoch: repairs bumped counters, so
            // re-anchor the persisted root for the rounds that follow.
            auth.advance_epoch();
            self.engine.persist_root(auth.root());
        }
        self.auth = auth;
        if let Some(class) = self.engine.poisoned() {
            errors.push(RecoveryError::Poisoned { class });
        }
        let mut report =
            RecoveryReport::from_check(self.check_recoverability(), self.ledger.committed_len());
        rolled_back.sort_unstable();
        rolled_back.dedup();
        report.repairs = repairs;
        report.rolled_back = rolled_back;
        report.incidents = incidents;
        report.errors = errors;
        report.replays_detected = replays_detected;
        report.splices_detected = splices_detected;
        report.poisoned = self.engine.poisoned().is_some();
        self.engine.finish_recovery(report)
    }

    /// The committed addresses the recoverability audit can no longer
    /// locate, with the audit's verbatim complaint (sorted by address).
    fn audit_failures(&self) -> Vec<(u64, String)> {
        self.ledger.audit_committed_collect(
            "copy",
            |a| {
                let addr = BlockAddr(a);
                let leaf = self.posmap.persisted_get(addr);
                let mut best: Option<&Block> = None;
                for idx in self.path_indices(leaf) {
                    if let Some(bucket) = self.buckets.get(&idx) {
                        for b in bucket.slots.iter().flatten() {
                            if b.addr() == addr
                                && b.leaf() == leaf
                                && best.is_none_or(|x| b.header.seq > x.header.seq)
                            {
                                best = Some(b);
                            }
                        }
                    }
                }
                (leaf, best.map(|b| b.payload.clone()))
            },
            |_, _| false,
        )
    }

    /// The newest (highest freshness counter) copy of `addr` anywhere on
    /// media that passes slot authentication, with its location.
    /// Deterministic: buckets are scanned in sorted order.
    fn newest_valid_copy(&self, addr: BlockAddr, auth: &AuthTags) -> Option<(u64, usize, Block)> {
        let mut best: Option<(u64, usize, Block)> = None;
        let mut indices: Vec<u64> = self.buckets.keys().copied().collect();
        indices.sort_unstable();
        for bidx in indices {
            let bucket = &self.buckets[&bidx];
            for (s, slot) in bucket.slots.iter().enumerate() {
                if let Some(b) = slot {
                    if b.addr() == addr
                        && auth.verify_slot(bidx, s, Some(b))
                        && best
                            .as_ref()
                            .is_none_or(|(_, _, x)| b.header.seq > x.header.seq)
                    {
                        best = Some((bidx, s, b.clone()));
                    }
                }
            }
        }
        best
    }

    /// The report of the most recent [`RingOram::recover`] call.
    pub fn last_recovery(&self) -> Option<&RecoveryReport> {
        self.engine.last_recovery()
    }

    /// Verifies that every committed value has a physical copy at its
    /// persisted PosMap position.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn check_recoverability(&self) -> Result<(), String> {
        self.ledger.audit_committed(
            "copy",
            |a| {
                let addr = BlockAddr(a);
                let leaf = self.posmap.persisted_get(addr);
                let mut best: Option<&Block> = None;
                for idx in self.path_indices(leaf) {
                    if let Some(bucket) = self.buckets.get(&idx) {
                        for b in bucket.slots.iter().flatten() {
                            if b.addr() == addr
                                && b.leaf() == leaf
                                && best.is_none_or(|x| b.header.seq > x.header.seq)
                            {
                                best = Some(b);
                            }
                        }
                    }
                }
                (leaf, best.map(|b| b.payload.clone()))
            },
            |_, _| false,
        )
    }

    /// Reads back every touched address and compares with the appropriate
    /// ledger (committed after a crash, written otherwise).
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    pub fn verify_contents(&mut self, after_crash: bool) -> Result<(), String> {
        let mut addrs = self.touched.clone();
        addrs.sort_unstable();
        addrs.dedup();
        for a in addrs {
            let expected = self
                .ledger
                .expected_value(a, after_crash, self.config.payload_bytes);
            let got = self.read(BlockAddr(a)).map_err(|e| e.to_string())?;
            if got != expected {
                return Err(format!("a{a}: read {got:?}, expected {expected:?}"));
            }
        }
        Ok(())
    }
}

/// Reverses the low `bits` bits of `x` (Ring ORAM's deterministic
/// reverse-lexicographic eviction order).
fn bit_reverse(x: u64, bits: u32) -> u64 {
    let mut out = 0u64;
    for i in 0..bits {
        out |= ((x >> i) & 1) << (bits - 1 - i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_reverse_basics() {
        assert_eq!(bit_reverse(0b001, 3), 0b100);
        assert_eq!(bit_reverse(0b110, 3), 0b011);
        assert_eq!(bit_reverse(0, 6), 0);
    }
}
