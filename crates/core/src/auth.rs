//! AES-CMAC authentication tags over NVM-resident controller state.
//!
//! With a device fault plan installed, recovery can no longer trust what
//! it reads back from media: torn programming and bit rot return
//! plausible-looking garbage. [`AuthTags`] maintains per-unit CMAC tags
//! (RFC 4493, over the dependency-free `psoram-crypto` AES) for the
//! three NVM-resident structures the tentpole threat model names:
//!
//! * **tree slots** — one tag per `(bucket, slot)` over the stored
//!   block's canonical bytes (or a dummy marker for empty slots);
//! * **persisted PosMap entries** — one tag per address over the
//!   `(addr, leaf)` pair;
//! * **the temporary PosMap** — one rolling seal over the sorted entry
//!   list (WPQ batch frames carry their own tags inside `psoram-nvm`).
//!
//! Tags live on-chip (they model a dedicated SRAM/eDRAM tag store, like
//! Anubis' shadow metadata region) and are therefore *trusted*: a
//! mismatch between a tag and the bytes read back from NVM is definitive
//! evidence of media damage, which recovery then classifies and repairs.

use std::collections::HashMap;

use psoram_crypto::{Aes128, Cmac};

use crate::block::Block;
use crate::tree::BucketIndex;

/// Canonical byte serialization of a tree slot's content.
///
/// Dummy slots get a distinct single-byte encoding so "slot emptied" and
/// "slot never tagged" stay distinguishable from any real block bytes.
fn slot_bytes(content: Option<&Block>) -> Vec<u8> {
    match content {
        None => vec![0xD5],
        Some(b) => {
            let mut out = Vec::with_capacity(42 + b.payload.len());
            out.push(0xB1);
            out.extend_from_slice(&b.header.addr.0.to_le_bytes());
            out.extend_from_slice(&b.header.leaf.0.to_le_bytes());
            out.extend_from_slice(&b.header.iv1.to_le_bytes());
            out.extend_from_slice(&b.header.iv2.to_le_bytes());
            out.extend_from_slice(&b.header.seq.to_le_bytes());
            out.push(b.is_backup as u8);
            out.extend_from_slice(&(b.payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&b.payload);
            out
        }
    }
}

/// Canonical byte serialization of a sorted temp-PosMap entry list.
fn temp_bytes(entries: &[(u64, u64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + entries.len() * 16);
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for (a, l) in entries {
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&l.to_le_bytes());
    }
    out
}

/// The on-chip tag store: per-unit CMAC tags over NVM-resident state.
#[derive(Debug, Clone)]
pub(crate) struct AuthTags {
    cmac: Cmac,
    slots: HashMap<(BucketIndex, usize), [u8; 16]>,
    posmap: HashMap<u64, [u8; 16]>,
    temp_seal: Option<[u8; 16]>,
}

impl AuthTags {
    /// Creates an empty tag store keyed with `key`.
    pub fn new(key: &[u8; 16]) -> Self {
        AuthTags {
            cmac: Cmac::new(Aes128::new(key)),
            slots: HashMap::new(),
            posmap: HashMap::new(),
            temp_seal: None,
        }
    }

    /// Records (or refreshes) the tag of `(bucket, slot)` over `content`.
    pub fn record_slot(&mut self, bucket: BucketIndex, slot: usize, content: Option<&Block>) {
        let tag = self.cmac.tag(&slot_bytes(content));
        self.slots.insert((bucket, slot), tag);
    }

    /// Verifies `(bucket, slot)` against `content`. Untagged slots verify
    /// clean — tags only cover units the controller has written since
    /// hardening was enabled.
    pub fn verify_slot(&self, bucket: BucketIndex, slot: usize, content: Option<&Block>) -> bool {
        match self.slots.get(&(bucket, slot)) {
            Some(tag) => self.cmac.verify(&slot_bytes(content), tag),
            None => true,
        }
    }

    /// All tagged slots in deterministic (sorted) order.
    pub fn tagged_slots_sorted(&self) -> Vec<(BucketIndex, usize)> {
        let mut v: Vec<(BucketIndex, usize)> = self.slots.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Records (or refreshes) the tag of the persisted PosMap entry.
    pub fn record_posmap(&mut self, addr: u64, leaf: u64) {
        let mut msg = [0u8; 17];
        msg[0] = 0x9A;
        msg[1..9].copy_from_slice(&addr.to_le_bytes());
        msg[9..17].copy_from_slice(&leaf.to_le_bytes());
        let tag = self.cmac.tag(&msg);
        self.posmap.insert(addr, tag);
    }

    /// Verifies the persisted PosMap entry of `addr`. Untagged entries
    /// verify clean.
    pub fn verify_posmap(&self, addr: u64, leaf: u64) -> bool {
        match self.posmap.get(&addr) {
            Some(tag) => {
                let mut msg = [0u8; 17];
                msg[0] = 0x9A;
                msg[1..9].copy_from_slice(&addr.to_le_bytes());
                msg[9..17].copy_from_slice(&leaf.to_le_bytes());
                self.cmac.verify(&msg, tag)
            }
            None => true,
        }
    }

    /// All tagged PosMap addresses in deterministic (sorted) order.
    pub fn tagged_posmap_sorted(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.posmap.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Reseals the temporary PosMap over its sorted entry list.
    pub fn seal_temp(&mut self, entries: &[(u64, u64)]) {
        self.temp_seal = Some(self.cmac.tag(&temp_bytes(entries)));
    }

    /// Verifies the temporary PosMap seal. No seal → clean.
    pub fn verify_temp(&self, entries: &[(u64, u64)]) -> bool {
        match &self.temp_seal {
            Some(tag) => self.cmac.verify(&temp_bytes(entries), tag),
            None => true,
        }
    }

    /// Clears the temporary PosMap seal (after a wipe).
    pub fn clear_temp_seal(&mut self) {
        self.temp_seal = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{BlockAddr, Leaf};

    fn tags() -> AuthTags {
        AuthTags::new(&[7u8; 16])
    }

    fn blk(a: u64, payload: u8) -> Block {
        Block::new(BlockAddr(a), Leaf(3), vec![payload; 8])
    }

    #[test]
    fn slot_tags_detect_any_field_mutation() {
        let mut t = tags();
        let b = blk(5, 1);
        t.record_slot(9, 2, Some(&b));
        assert!(t.verify_slot(9, 2, Some(&b)));

        let mut evil = b.clone();
        evil.payload[3] ^= 0x40;
        assert!(!t.verify_slot(9, 2, Some(&evil)), "payload flip undetected");

        let mut evil = b.clone();
        evil.header.seq += 1;
        assert!(!t.verify_slot(9, 2, Some(&evil)), "seq bump undetected");

        let mut evil = b.clone();
        evil.header.leaf = Leaf(4);
        assert!(!t.verify_slot(9, 2, Some(&evil)), "leaf change undetected");

        let mut evil = b;
        evil.is_backup = true;
        assert!(!t.verify_slot(9, 2, Some(&evil)), "backup flip undetected");
    }

    #[test]
    fn dummy_and_untagged_slots() {
        let mut t = tags();
        // Untagged: anything verifies.
        assert!(t.verify_slot(1, 0, Some(&blk(1, 1))));
        assert!(t.verify_slot(1, 0, None));
        // Tagged dummy: a materialized block is damage.
        t.record_slot(1, 0, None);
        assert!(t.verify_slot(1, 0, None));
        assert!(!t.verify_slot(1, 0, Some(&blk(1, 1))));
        // Tagged real block wiped to dummy is damage too.
        t.record_slot(2, 1, Some(&blk(2, 2)));
        assert!(!t.verify_slot(2, 1, None));
    }

    #[test]
    fn posmap_tags_detect_leaf_swaps() {
        let mut t = tags();
        t.record_posmap(4, 11);
        assert!(t.verify_posmap(4, 11));
        assert!(!t.verify_posmap(4, 12));
        assert!(t.verify_posmap(5, 0), "untagged address verifies clean");
        assert_eq!(t.tagged_posmap_sorted(), vec![4]);
    }

    #[test]
    fn temp_seal_covers_the_whole_entry_list() {
        let mut t = tags();
        assert!(t.verify_temp(&[(1, 2)]), "unsealed verifies clean");
        t.seal_temp(&[(1, 2), (3, 4)]);
        assert!(t.verify_temp(&[(1, 2), (3, 4)]));
        assert!(!t.verify_temp(&[(1, 2)]));
        assert!(!t.verify_temp(&[(1, 2), (3, 5)]));
        t.clear_temp_seal();
        assert!(t.verify_temp(&[]));
    }

    #[test]
    fn tagged_slots_sorted_is_deterministic() {
        let mut t = tags();
        t.record_slot(9, 1, None);
        t.record_slot(2, 3, None);
        t.record_slot(2, 0, None);
        assert_eq!(t.tagged_slots_sorted(), vec![(2, 0), (2, 3), (9, 1)]);
    }
}
