//! Freshness-protected AES-CMAC authentication over NVM-resident state.
//!
//! PR-5 gave recovery *integrity*: per-unit CMAC tags (RFC 4493, over the
//! dependency-free `psoram-crypto` AES) that convict torn programming and
//! bit rot. This module upgrades the layer to *freshness*. The threat
//! model sharpens: per-unit tags and version counters now conceptually
//! live **off-chip next to the data they cover**, so an adversary with
//! media access can replay a stale-but-authentic `(content, record)` pair
//! or splice an authentic record across addresses, and every per-unit
//! check still passes. The only trusted state is the on-chip
//! [`CounterTree`]: per-unit monotonic version counters aggregated (XOR
//! of per-unit digests, grouped by ORAM tree level) into a single root
//! digest that the persist engine stores atomically each round.
//!
//! Three structures cooperate:
//!
//! * [`UnitMeta`] — the off-chip stored record: the unit's version
//!   counter, its source identity `(bucket, slot)` or `(addr, _)`, and a
//!   CMAC tag binding counter + identity + canonical content bytes. An
//!   adversary may copy, re-serve, or relocate records wholesale.
//! * [`CounterTree`] — the on-chip trusted anchor. Each write bumps the
//!   unit's counter in O(1): the unit's old digest is XORed out of its
//!   tree-level aggregate and the new one XORed in, so the root is a pure
//!   function of the final counter map — independent of persist order.
//! * [`AuthTags`] — the verification front end. [`AuthTags::verdict_slot`]
//!   classifies what it reads back: `Tampered` (tag mismatch — media
//!   damage), `Spliced` (authentic record for a *different* address),
//!   `Stale` (authentic record whose counter lags the trusted one — a
//!   replay), `Missing` (trusted counter exists but the record is gone —
//!   rollback to genesis), or `Clean`.
//!
//! The temporary PosMap seal is unchanged from PR-5: it models an on-chip
//! rolling seal and is not replayable in this model.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::HashMap;

use psoram_crypto::{Aes128, Cmac};

use crate::block::Block;
use crate::tree::BucketIndex;
use crate::types::Leaf;

/// CMAC domain byte for tree-slot records.
const DOMAIN_SLOT: u8 = 0x51;
/// CMAC domain byte for persisted PosMap records.
const DOMAIN_POSMAP: u8 = 0x9A;
/// CMAC domain byte for counter-tree per-unit digests.
const DOMAIN_CTR: u8 = 0xC7;
/// CMAC domain byte for the counter-tree root.
const DOMAIN_ROOT: u8 = 0x52;

/// Canonical byte serialization of a tree slot's content.
///
/// Dummy slots get a distinct single-byte encoding so "slot emptied" and
/// "slot never tagged" stay distinguishable from any real block bytes.
fn slot_bytes(content: Option<&Block>) -> Vec<u8> {
    match content {
        None => vec![0xD5],
        Some(b) => {
            let mut out = Vec::with_capacity(42 + b.payload.len());
            out.push(0xB1);
            out.extend_from_slice(&b.header.addr.0.to_le_bytes());
            out.extend_from_slice(&b.header.leaf.0.to_le_bytes());
            out.extend_from_slice(&b.header.iv1.to_le_bytes());
            out.extend_from_slice(&b.header.iv2.to_le_bytes());
            out.extend_from_slice(&b.header.seq.to_le_bytes());
            out.push(b.is_backup as u8);
            out.extend_from_slice(&(b.payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&b.payload);
            out
        }
    }
}

/// Canonical byte serialization of a sorted temp-PosMap entry list.
fn temp_bytes(entries: &[(u64, u64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + entries.len() * 16);
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for (a, l) in entries {
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&l.to_le_bytes());
    }
    out
}

/// Constant-shape 16-byte tag comparison.
fn tags_equal(a: &[u8; 16], b: &[u8; 16]) -> bool {
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

/// A stale snapshot the adversary re-serves on the fetch wire: the
/// unit's coordinates plus the `(content, record)` pair as they stood
/// before the last overwrite.
pub(crate) type StaleServe = ((u64, usize), Option<Block>, Option<UnitMeta>);

/// The off-chip stored record accompanying one persisted unit.
///
/// Conceptually this lives on NVM next to the content it covers, so an
/// adversary can snapshot and re-serve it (`Stale`), move it to another
/// address (`Spliced`), or delete it (`Missing`). The tag binds the
/// source identity, the version counter, and the canonical content
/// bytes, so a record is internally consistent even when replayed — only
/// the trusted [`CounterTree`] can convict it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitMeta {
    /// The version counter the record was written under.
    pub ctr: u64,
    /// The identity the record was written for: `(bucket, slot)` for
    /// tree slots, `(addr, 0)` for persisted PosMap entries.
    pub src: (u64, u64),
    /// CMAC over `(src, ctr, content)` under the unit's domain.
    pub tag: [u8; 16],
}

/// The outcome of verifying one stored unit against its record and the
/// trusted counter tree, ordered worst evidence first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreshnessVerdict {
    /// Record present, authentic, at the right address, and fresh.
    Clean,
    /// The tag does not cover the bytes read back: media damage.
    Tampered,
    /// An authentic record for a *different* address was served here.
    Spliced,
    /// An authentic record for this address whose counter lags the
    /// trusted one: a replay of a stale version.
    Stale,
    /// The trusted counter says the unit was written, but no record was
    /// found: rollback to genesis.
    Missing,
}

impl FreshnessVerdict {
    /// Stable lowercase label for traces and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FreshnessVerdict::Clean => "clean",
            FreshnessVerdict::Tampered => "tampered",
            FreshnessVerdict::Spliced => "spliced",
            FreshnessVerdict::Stale => "stale",
            FreshnessVerdict::Missing => "missing",
        }
    }

    /// The NVM-layer fault class a non-clean verdict convicts, for
    /// classification and fail-safe poisoning. `Clean` maps to `None`.
    pub(crate) fn fault_class(&self) -> Option<psoram_nvm::FaultClass> {
        use psoram_nvm::FaultClass;
        match self {
            FreshnessVerdict::Clean => None,
            FreshnessVerdict::Tampered => Some(FaultClass::MediaCorruption),
            FreshnessVerdict::Spliced => Some(FaultClass::CrossSplice),
            FreshnessVerdict::Stale | FreshnessVerdict::Missing => Some(FaultClass::StaleReplay),
        }
    }
}

/// Fetch-path freshness counters kept by a controller.
///
/// `stale_serves` is ground truth — incremented whenever the adversary
/// actually serves a stale unit on the read path, hardened or not.
/// `stale_serves_detected` counts the serves the freshness check caught.
/// A hardened design must keep the two equal; an unhardened baseline
/// consumes the stale bytes silently and the gap convicts it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FreshnessStats {
    /// Stale units actually served on the fetch path (ground truth).
    pub stale_serves: u64,
    /// Stale serves the freshness verification detected and discarded.
    pub stale_serves_detected: u64,
    /// Fetch-path verifications that failed hard enough to poison.
    pub fetch_poisons: u64,
}

impl FreshnessStats {
    /// True when every injected stale serve was detected.
    pub fn all_detected(&self) -> bool {
        self.stale_serves_detected == self.stale_serves
    }

    /// Field-wise accumulation (for campaign aggregation).
    pub fn merge(&mut self, other: &FreshnessStats) {
        self.stale_serves += other.stale_serves;
        self.stale_serves_detected += other.stale_serves_detected;
        self.fetch_poisons += other.fetch_poisons;
    }
}

/// The on-chip trusted freshness anchor: per-unit monotonic version
/// counters aggregated into one root digest.
///
/// Every persisted unit (tree slot or PosMap entry) owns a counter that
/// bumps on each write. Each `(unit, ctr)` pair has a CMAC-derived
/// 128-bit digest; digests are XOR-folded per ORAM tree level (PosMap
/// entries fold into their own aggregate), and the root is a CMAC over
/// `(epoch, level aggregates, posmap aggregate)`. A bump is O(1): XOR
/// the old digest out, XOR the new digest in. The root is therefore a
/// pure function of the final counter map — two equivalent persist
/// schedules that end in the same counters produce bit-identical roots.
#[derive(Debug, Clone)]
pub struct CounterTree {
    cmac: Cmac,
    slots: HashMap<(u64, usize), u64>,
    posmap: HashMap<u64, u64>,
    levels: Vec<u128>,
    posmap_agg: u128,
    epoch: u64,
}

impl CounterTree {
    /// Creates an empty counter tree keyed with `key`.
    pub fn new(key: &[u8; 16]) -> Self {
        CounterTree {
            cmac: Cmac::new(Aes128::new(key)),
            slots: HashMap::new(),
            posmap: HashMap::new(),
            levels: Vec::new(),
            posmap_agg: 0,
            epoch: 0,
        }
    }

    /// Tree level of a heap-indexed bucket (root = level 0).
    fn level_of(bucket: u64) -> usize {
        (bucket + 1).ilog2() as usize
    }

    fn slot_digest(&self, bucket: u64, slot: usize, ctr: u64) -> u128 {
        u128::from_le_bytes(self.cmac.tag_parts(
            DOMAIN_CTR,
            &[
                b"slot",
                &bucket.to_le_bytes(),
                &(slot as u64).to_le_bytes(),
                &ctr.to_le_bytes(),
            ],
        ))
    }

    fn posmap_digest(&self, addr: u64, ctr: u64) -> u128 {
        u128::from_le_bytes(self.cmac.tag_parts(
            DOMAIN_CTR,
            &[b"posmap", &addr.to_le_bytes(), &ctr.to_le_bytes()],
        ))
    }

    /// Bumps the counter of tree slot `(bucket, slot)` and returns the
    /// new value. O(1): only the slot's level aggregate changes.
    pub fn bump_slot(&mut self, bucket: u64, slot: usize) -> u64 {
        let level = Self::level_of(bucket);
        if self.levels.len() <= level {
            self.levels.resize(level + 1, 0);
        }
        let prev = self.slots.get(&(bucket, slot)).copied();
        if let Some(c) = prev {
            let out = self.slot_digest(bucket, slot, c);
            self.levels[level] ^= out;
        }
        let next = prev.unwrap_or(0) + 1;
        let digest = self.slot_digest(bucket, slot, next);
        self.levels[level] ^= digest;
        self.slots.insert((bucket, slot), next);
        next
    }

    /// Bumps the counter of PosMap address `addr` and returns the new
    /// value.
    pub fn bump_posmap(&mut self, addr: u64) -> u64 {
        let prev = self.posmap.get(&addr).copied();
        if let Some(c) = prev {
            let out = self.posmap_digest(addr, c);
            self.posmap_agg ^= out;
        }
        let next = prev.unwrap_or(0) + 1;
        let digest = self.posmap_digest(addr, next);
        self.posmap_agg ^= digest;
        self.posmap.insert(addr, next);
        next
    }

    /// The trusted counter of a tree slot, if the slot was ever written.
    pub fn slot_ctr(&self, bucket: u64, slot: usize) -> Option<u64> {
        self.slots.get(&(bucket, slot)).copied()
    }

    /// The trusted counter of a PosMap address, if it was ever persisted.
    pub fn posmap_ctr(&self, addr: u64) -> Option<u64> {
        self.posmap.get(&addr).copied()
    }

    /// All tracked slots in deterministic (sorted) order.
    pub fn tracked_slots_sorted(&self) -> Vec<(u64, usize)> {
        let mut v: Vec<(u64, usize)> = self.slots.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// All tracked PosMap addresses in deterministic (sorted) order.
    pub fn tracked_posmap_sorted(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.posmap.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The current epoch (bumped once per recovery).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the epoch, versioning the root across recoveries.
    pub fn advance_epoch(&mut self) {
        self.epoch += 1;
    }

    /// The root digest: CMAC over the epoch, every tree-level aggregate,
    /// and the PosMap aggregate. Depends only on the final counter map
    /// and the epoch.
    pub fn root(&self) -> [u8; 16] {
        let epoch = self.epoch.to_le_bytes();
        let level_bytes: Vec<[u8; 16]> = self.levels.iter().map(|l| l.to_le_bytes()).collect();
        let pos = self.posmap_agg.to_le_bytes();
        let mut parts: Vec<&[u8]> = Vec::with_capacity(2 + level_bytes.len());
        parts.push(&epoch);
        for lb in &level_bytes {
            parts.push(lb);
        }
        parts.push(&pos);
        self.cmac.tag_parts(DOMAIN_ROOT, &parts)
    }
}

/// The adversary's snapshot store: for each unit, the `(content, record)`
/// pair that was current *before* the most recent write.
///
/// The replay/splice adversary records authentic prior versions as the
/// controller overwrites units, then re-serves them at crash time or on
/// the read path. This is adversary state, not defense state: it is
/// installed alongside the fault plan on hardened *and* baseline
/// designs, so both face the same attack.
#[derive(Debug, Clone, Default)]
pub(crate) struct UnitHistory {
    slots: HashMap<(BucketIndex, usize), (Option<Block>, Option<UnitMeta>)>,
    posmap: HashMap<u64, (Leaf, Option<UnitMeta>)>,
}

impl UnitHistory {
    /// Records the pre-write state of a tree slot.
    pub fn note_slot(
        &mut self,
        bucket: BucketIndex,
        slot: usize,
        prev_content: Option<Block>,
        prev_meta: Option<UnitMeta>,
    ) {
        self.slots.insert((bucket, slot), (prev_content, prev_meta));
    }

    /// The recorded prior version of a tree slot, if any.
    pub fn slot(
        &self,
        bucket: BucketIndex,
        slot: usize,
    ) -> Option<&(Option<Block>, Option<UnitMeta>)> {
        self.slots.get(&(bucket, slot))
    }

    /// Records the pre-write state of a persisted PosMap entry.
    pub fn note_posmap(&mut self, addr: u64, prev_leaf: Leaf, prev_meta: Option<UnitMeta>) {
        self.posmap.insert(addr, (prev_leaf, prev_meta));
    }

    /// The recorded prior version of a persisted PosMap entry, if any.
    pub fn posmap(&self, addr: u64) -> Option<&(Leaf, Option<UnitMeta>)> {
        self.posmap.get(&addr)
    }
}

/// The verification front end: off-chip per-unit records plus the
/// on-chip trusted [`CounterTree`].
#[derive(Debug, Clone)]
pub(crate) struct AuthTags {
    cmac: Cmac,
    ctrs: CounterTree,
    slots: HashMap<(BucketIndex, usize), UnitMeta>,
    posmap: HashMap<u64, UnitMeta>,
    temp_seal: Option<[u8; 16]>,
}

impl AuthTags {
    /// Creates an empty store keyed with `key`.
    pub fn new(key: &[u8; 16]) -> Self {
        AuthTags {
            cmac: Cmac::new(Aes128::new(key)),
            ctrs: CounterTree::new(key),
            slots: HashMap::new(),
            posmap: HashMap::new(),
            temp_seal: None,
        }
    }

    fn slot_tag(&self, src: (u64, u64), ctr: u64, content: Option<&Block>) -> [u8; 16] {
        self.cmac.tag_parts(
            DOMAIN_SLOT,
            &[
                &src.0.to_le_bytes(),
                &src.1.to_le_bytes(),
                &ctr.to_le_bytes(),
                &slot_bytes(content),
            ],
        )
    }

    fn posmap_tag(&self, src: (u64, u64), ctr: u64, leaf: u64) -> [u8; 16] {
        self.cmac.tag_parts(
            DOMAIN_POSMAP,
            &[
                &src.0.to_le_bytes(),
                &src.1.to_le_bytes(),
                &ctr.to_le_bytes(),
                &leaf.to_le_bytes(),
            ],
        )
    }

    /// Records (or refreshes) `(bucket, slot)` over `content`: bumps the
    /// trusted counter and stores a fresh off-chip record.
    pub fn record_slot(&mut self, bucket: BucketIndex, slot: usize, content: Option<&Block>) {
        let ctr = self.ctrs.bump_slot(bucket, slot);
        let src = (bucket, slot as u64);
        let tag = self.slot_tag(src, ctr, content);
        self.slots
            .insert((bucket, slot), UnitMeta { ctr, src, tag });
    }

    /// Classifies `(bucket, slot)` against `content`, worst evidence
    /// first: `Tampered` beats `Spliced` beats `Stale`. Untracked slots
    /// verify `Clean`; a tracked slot with no record is `Missing`.
    pub fn verdict_slot(
        &self,
        bucket: BucketIndex,
        slot: usize,
        content: Option<&Block>,
    ) -> FreshnessVerdict {
        self.classify_served_slot(bucket, slot, content, self.slots.get(&(bucket, slot)))
    }

    /// Classifies an arbitrary served `(content, record)` pair claiming
    /// to be `(bucket, slot)` — the fetch-path wire check, where the
    /// record under test is whatever the device *served*, not the
    /// stored one.
    pub fn classify_served_slot(
        &self,
        bucket: BucketIndex,
        slot: usize,
        content: Option<&Block>,
        rec: Option<&UnitMeta>,
    ) -> FreshnessVerdict {
        match rec {
            None => {
                if self.ctrs.slot_ctr(bucket, slot).is_some() {
                    FreshnessVerdict::Missing
                } else {
                    FreshnessVerdict::Clean
                }
            }
            Some(m) => {
                let expected = self.slot_tag(m.src, m.ctr, content);
                if !tags_equal(&expected, &m.tag) {
                    FreshnessVerdict::Tampered
                } else if m.src != (bucket, slot as u64) {
                    FreshnessVerdict::Spliced
                } else if Some(m.ctr) != self.ctrs.slot_ctr(bucket, slot) {
                    FreshnessVerdict::Stale
                } else {
                    FreshnessVerdict::Clean
                }
            }
        }
    }

    /// Boolean form of [`AuthTags::verdict_slot`].
    pub fn verify_slot(&self, bucket: BucketIndex, slot: usize, content: Option<&Block>) -> bool {
        self.verdict_slot(bucket, slot, content) == FreshnessVerdict::Clean
    }

    /// All tracked slots in deterministic (sorted) order. Driven by the
    /// trusted counter tree, so a unit whose record was deleted by the
    /// adversary is still visited at recovery.
    pub fn tagged_slots_sorted(&self) -> Vec<(BucketIndex, usize)> {
        self.ctrs.tracked_slots_sorted()
    }

    /// Records (or refreshes) the persisted PosMap entry of `addr`.
    pub fn record_posmap(&mut self, addr: u64, leaf: u64) {
        let ctr = self.ctrs.bump_posmap(addr);
        let src = (addr, 0);
        let tag = self.posmap_tag(src, ctr, leaf);
        self.posmap.insert(addr, UnitMeta { ctr, src, tag });
    }

    /// Classifies the persisted PosMap entry of `addr` against `leaf`.
    pub fn verdict_posmap(&self, addr: u64, leaf: u64) -> FreshnessVerdict {
        match self.posmap.get(&addr) {
            None => {
                if self.ctrs.posmap_ctr(addr).is_some() {
                    FreshnessVerdict::Missing
                } else {
                    FreshnessVerdict::Clean
                }
            }
            Some(m) => {
                let expected = self.posmap_tag(m.src, m.ctr, leaf);
                if !tags_equal(&expected, &m.tag) {
                    FreshnessVerdict::Tampered
                } else if m.src != (addr, 0) {
                    FreshnessVerdict::Spliced
                } else if Some(m.ctr) != self.ctrs.posmap_ctr(addr) {
                    FreshnessVerdict::Stale
                } else {
                    FreshnessVerdict::Clean
                }
            }
        }
    }

    /// Boolean form of [`AuthTags::verdict_posmap`].
    #[cfg(test)]
    pub fn verify_posmap(&self, addr: u64, leaf: u64) -> bool {
        self.verdict_posmap(addr, leaf) == FreshnessVerdict::Clean
    }

    /// All tracked PosMap addresses in deterministic (sorted) order.
    pub fn tagged_posmap_sorted(&self) -> Vec<u64> {
        self.ctrs.tracked_posmap_sorted()
    }

    /// The off-chip record of a tree slot (adversary hook).
    pub fn slot_record(&self, bucket: BucketIndex, slot: usize) -> Option<UnitMeta> {
        self.slots.get(&(bucket, slot)).copied()
    }

    /// Overwrites (or deletes) the off-chip record of a tree slot
    /// *without* touching the trusted counter (adversary hook).
    pub fn set_slot_record(&mut self, bucket: BucketIndex, slot: usize, rec: Option<UnitMeta>) {
        match rec {
            Some(m) => {
                self.slots.insert((bucket, slot), m);
            }
            None => {
                self.slots.remove(&(bucket, slot));
            }
        }
    }

    /// The off-chip record of a persisted PosMap entry (adversary hook).
    pub fn posmap_record(&self, addr: u64) -> Option<UnitMeta> {
        self.posmap.get(&addr).copied()
    }

    /// Overwrites (or deletes) the off-chip record of a PosMap entry
    /// *without* touching the trusted counter (adversary hook).
    pub fn set_posmap_record(&mut self, addr: u64, rec: Option<UnitMeta>) {
        match rec {
            Some(m) => {
                self.posmap.insert(addr, m);
            }
            None => {
                self.posmap.remove(&addr);
            }
        }
    }

    /// The trusted counter-tree root digest.
    pub fn root(&self) -> [u8; 16] {
        self.ctrs.root()
    }

    /// Advances the counter-tree epoch (once per recovery).
    pub fn advance_epoch(&mut self) {
        self.ctrs.advance_epoch();
    }

    /// Reseals the temporary PosMap over its sorted entry list.
    pub fn seal_temp(&mut self, entries: &[(u64, u64)]) {
        self.temp_seal = Some(self.cmac.tag(&temp_bytes(entries)));
    }

    /// Verifies the temporary PosMap seal. No seal → clean.
    pub fn verify_temp(&self, entries: &[(u64, u64)]) -> bool {
        match &self.temp_seal {
            Some(tag) => self.cmac.verify(&temp_bytes(entries), tag),
            None => true,
        }
    }

    /// Clears the temporary PosMap seal (after a wipe).
    pub fn clear_temp_seal(&mut self) {
        self.temp_seal = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{BlockAddr, Leaf};

    fn tags() -> AuthTags {
        AuthTags::new(&[7u8; 16])
    }

    fn blk(a: u64, payload: u8) -> Block {
        Block::new(BlockAddr(a), Leaf(3), vec![payload; 8])
    }

    #[test]
    fn slot_tags_detect_any_field_mutation() {
        let mut t = tags();
        let b = blk(5, 1);
        t.record_slot(9, 2, Some(&b));
        assert!(t.verify_slot(9, 2, Some(&b)));

        let mut evil = b.clone();
        evil.payload[3] ^= 0x40;
        assert_eq!(
            t.verdict_slot(9, 2, Some(&evil)),
            FreshnessVerdict::Tampered,
            "payload flip undetected"
        );

        let mut evil = b.clone();
        evil.header.seq += 1;
        assert!(!t.verify_slot(9, 2, Some(&evil)), "seq bump undetected");

        let mut evil = b.clone();
        evil.header.leaf = Leaf(4);
        assert!(!t.verify_slot(9, 2, Some(&evil)), "leaf change undetected");

        let mut evil = b;
        evil.is_backup = true;
        assert!(!t.verify_slot(9, 2, Some(&evil)), "backup flip undetected");
    }

    #[test]
    fn dummy_and_untagged_slots() {
        let mut t = tags();
        // Untracked: anything verifies.
        assert!(t.verify_slot(1, 0, Some(&blk(1, 1))));
        assert!(t.verify_slot(1, 0, None));
        assert_eq!(t.verdict_slot(1, 0, None), FreshnessVerdict::Clean);
        // Tagged dummy: a materialized block is damage.
        t.record_slot(1, 0, None);
        assert!(t.verify_slot(1, 0, None));
        assert!(!t.verify_slot(1, 0, Some(&blk(1, 1))));
        // Tagged real block wiped to dummy is damage too.
        t.record_slot(2, 1, Some(&blk(2, 2)));
        assert!(!t.verify_slot(2, 1, None));
    }

    #[test]
    fn posmap_tags_detect_leaf_swaps() {
        let mut t = tags();
        t.record_posmap(4, 11);
        assert!(t.verify_posmap(4, 11));
        assert_eq!(t.verdict_posmap(4, 12), FreshnessVerdict::Tampered);
        assert!(t.verify_posmap(5, 0), "untracked address verifies clean");
        assert_eq!(t.tagged_posmap_sorted(), vec![4]);
    }

    #[test]
    fn temp_seal_covers_the_whole_entry_list() {
        let mut t = tags();
        assert!(t.verify_temp(&[(1, 2)]), "unsealed verifies clean");
        t.seal_temp(&[(1, 2), (3, 4)]);
        assert!(t.verify_temp(&[(1, 2), (3, 4)]));
        assert!(!t.verify_temp(&[(1, 2)]));
        assert!(!t.verify_temp(&[(1, 2), (3, 5)]));
        t.clear_temp_seal();
        assert!(t.verify_temp(&[]));
    }

    #[test]
    fn tagged_slots_sorted_is_deterministic() {
        let mut t = tags();
        t.record_slot(9, 1, None);
        t.record_slot(2, 3, None);
        t.record_slot(2, 0, None);
        assert_eq!(t.tagged_slots_sorted(), vec![(2, 0), (2, 3), (9, 1)]);
    }

    #[test]
    fn replayed_slot_record_is_stale_not_clean() {
        let mut t = tags();
        let v1 = blk(5, 1);
        let v2 = blk(5, 2);
        t.record_slot(3, 0, Some(&v1));
        let stale = t.slot_record(3, 0);
        assert!(stale.is_some());
        t.record_slot(3, 0, Some(&v2));
        assert!(t.verify_slot(3, 0, Some(&v2)));
        // Adversary re-serves the authentic v1 (content, record) pair:
        // the tag verifies, the address matches, but the counter lags.
        t.set_slot_record(3, 0, stale);
        assert_eq!(
            t.verdict_slot(3, 0, Some(&v1)),
            FreshnessVerdict::Stale,
            "replayed coherent record must be convicted by the counter"
        );
    }

    #[test]
    fn spliced_records_flag_both_locations() {
        let mut t = tags();
        let a = blk(1, 0xAA);
        let b = blk(2, 0xBB);
        t.record_slot(7, 0, Some(&a));
        t.record_slot(8, 1, Some(&b));
        let ra = t.slot_record(7, 0);
        let rb = t.slot_record(8, 1);
        // Swap records (and contents) across the two slots.
        t.set_slot_record(7, 0, rb);
        t.set_slot_record(8, 1, ra);
        assert_eq!(t.verdict_slot(7, 0, Some(&b)), FreshnessVerdict::Spliced);
        assert_eq!(t.verdict_slot(8, 1, Some(&a)), FreshnessVerdict::Spliced);
    }

    #[test]
    fn genesis_rollback_is_missing() {
        let mut t = tags();
        t.record_slot(4, 2, Some(&blk(9, 3)));
        t.set_slot_record(4, 2, None);
        assert_eq!(
            t.verdict_slot(4, 2, None),
            FreshnessVerdict::Missing,
            "deleted record with a live trusted counter is a rollback"
        );
        // But the unit stays visible to recovery sweeps.
        assert!(t.tagged_slots_sorted().contains(&(4, 2)));
    }

    #[test]
    fn posmap_replay_and_splice_are_detected() {
        let mut t = tags();
        t.record_posmap(10, 100);
        let stale = t.posmap_record(10);
        t.record_posmap(10, 101);
        t.set_posmap_record(10, stale);
        assert_eq!(t.verdict_posmap(10, 100), FreshnessVerdict::Stale);

        let mut t = tags();
        t.record_posmap(1, 11);
        t.record_posmap(2, 22);
        let r1 = t.posmap_record(1);
        let r2 = t.posmap_record(2);
        t.set_posmap_record(1, r2);
        t.set_posmap_record(2, r1);
        assert_eq!(t.verdict_posmap(1, 22), FreshnessVerdict::Spliced);
        assert_eq!(t.verdict_posmap(2, 11), FreshnessVerdict::Spliced);

        let mut t = tags();
        t.record_posmap(3, 33);
        t.set_posmap_record(3, None);
        assert_eq!(t.verdict_posmap(3, 33), FreshnessVerdict::Missing);
    }

    #[test]
    fn root_tracks_every_bump_and_the_epoch() {
        let mut c = CounterTree::new(&[1u8; 16]);
        let r0 = c.root();
        c.bump_slot(0, 0);
        let r1 = c.root();
        assert_ne!(r0, r1, "slot bump must change the root");
        c.bump_posmap(5);
        let r2 = c.root();
        assert_ne!(r1, r2, "posmap bump must change the root");
        c.advance_epoch();
        assert_ne!(r2, c.root(), "epoch advance must change the root");
        assert_eq!(c.epoch(), 1);
        assert_eq!(c.slot_ctr(0, 0), Some(1));
        assert_eq!(c.posmap_ctr(5), Some(1));
        assert_eq!(c.slot_ctr(0, 1), None);
    }

    #[test]
    fn root_is_order_invariant_for_equivalent_schedules() {
        let ops = [(0u64, 0usize), (1, 2), (6, 1), (1, 2), (14, 3), (0, 0)];
        let mut a = CounterTree::new(&[2u8; 16]);
        for &(b, s) in &ops {
            a.bump_slot(b, s);
        }
        a.bump_posmap(7);
        a.bump_posmap(9);

        let mut b = CounterTree::new(&[2u8; 16]);
        b.bump_posmap(9);
        let mut rev = ops;
        rev.reverse();
        for &(bu, s) in &rev {
            b.bump_slot(bu, s);
        }
        b.bump_posmap(7);
        assert_eq!(a.root(), b.root(), "same final counters, same root");

        // One extra bump anywhere diverges the root.
        b.bump_slot(6, 1);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn unit_history_keeps_the_previous_version() {
        let mut h = UnitHistory::default();
        h.note_slot(3, 1, None, None);
        h.note_slot(3, 1, Some(blk(5, 1)), None);
        let (content, meta) = h.slot(3, 1).cloned().unwrap_or((None, None));
        assert_eq!(content.map(|b| b.payload[0]), Some(1));
        assert!(meta.is_none());
        assert!(h.slot(9, 9).is_none());

        h.note_posmap(4, Leaf(6), None);
        assert_eq!(h.posmap(4).map(|(l, _)| *l), Some(Leaf(6)));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// One persist schedule: a list of slot bumps plus posmap bumps.
        fn schedule() -> impl Strategy<Value = (Vec<(u64, usize)>, Vec<u64>)> {
            (
                proptest::collection::vec((0u64..31, 0usize..4), 0..48),
                proptest::collection::vec(0u64..16, 0..24),
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// The root digest depends only on the final counter map:
            /// applying the same multiset of bumps in a different order
            /// (here: sorted) yields a bit-identical root.
            #[test]
            fn root_is_schedule_order_invariant(ops in schedule()) {
                let (slots, addrs) = ops;
                let mut a = CounterTree::new(&[3u8; 16]);
                for &(b, s) in &slots {
                    a.bump_slot(b, s);
                }
                for &p in &addrs {
                    a.bump_posmap(p);
                }

                let mut sorted_slots = slots.clone();
                sorted_slots.sort_unstable();
                let mut sorted_addrs = addrs.clone();
                sorted_addrs.sort_unstable();
                let mut b = CounterTree::new(&[3u8; 16]);
                for &p in &sorted_addrs {
                    b.bump_posmap(p);
                }
                for &(bu, s) in &sorted_slots {
                    b.bump_slot(bu, s);
                }
                prop_assert_eq!(a.root(), b.root());
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Replaying any single stale version of a unit is always
            /// detected: after `n ≥ 2` writes, re-serving the record and
            /// content from any earlier write never verdicts Clean.
            #[test]
            fn any_single_stale_replay_is_detected(
                bucket in 0u64..31,
                slot in 0usize..4,
                writes in 2usize..6,
                serve in 0usize..5,
            ) {
                let serve = serve % (writes - 1); // strictly older version
                let mut t = AuthTags::new(&[4u8; 16]);
                let mut snapshots = Vec::new();
                for i in 0..writes {
                    let b = Block::new(BlockAddr(1), Leaf(2), vec![i as u8; 4]);
                    t.record_slot(bucket, slot, Some(&b));
                    snapshots.push((Some(b), t.slot_record(bucket, slot)));
                }
                let (content, meta) = snapshots[serve].clone();
                t.set_slot_record(bucket, slot, meta);
                let verdict = t.verdict_slot(bucket, slot, content.as_ref());
                prop_assert_eq!(
                    verdict,
                    FreshnessVerdict::Stale,
                    "serving write {} of {} must be stale", serve, writes
                );
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Splicing an authentic record to any *other* unit is always
            /// detected as Spliced (when content travels with it).
            #[test]
            fn any_cross_splice_is_detected(
                from in (0u64..31, 0usize..4),
                to in (0u64..31, 0usize..4),
                payload in 0u8..255,
            ) {
                // Vendored proptest has no prop_assume!: skip the
                // (rare) same-unit draw, which is not a splice.
                if from != to {
                    let mut t = AuthTags::new(&[5u8; 16]);
                    let b = Block::new(BlockAddr(3), Leaf(1), vec![payload; 4]);
                    t.record_slot(from.0, from.1, Some(&b));
                    let rec = t.slot_record(from.0, from.1);
                    t.set_slot_record(to.0, to.1, rec);
                    let verdict = t.verdict_slot(to.0, to.1, Some(&b));
                    prop_assert_eq!(verdict, FreshnessVerdict::Spliced);
                }
            }
        }
    }
}
