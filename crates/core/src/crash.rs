//! Crash injection points within an ORAM access.

use serde::{Deserialize, Serialize};

/// Where within the five-step ORAM access a power failure strikes.
///
/// These mirror the case studies of paper §3.3: crashes after the PosMap
/// update (Case 1), after the path load (Case 2), and during/after the
/// eviction write-back (Case 3, Figure 3).
///
/// # Examples
///
/// ```
/// use psoram_core::CrashPoint;
///
/// let points = CrashPoint::step_boundaries();
/// assert_eq!(points.len(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CrashPoint {
    /// After step ① (stash check), before the PosMap is touched.
    AfterCheckStash,
    /// After step ② (PosMap access + remap) — paper Case 1.
    AfterAccessPosMap,
    /// After step ③ (path load into the stash) — paper Case 2.
    AfterLoadPath,
    /// After step ④ (stash update + backup creation).
    AfterUpdateStash,
    /// During step ⑤: after `k` persistence units have reached the NVM
    /// (direct writes for non-WPQ designs; committed atomic batches for
    /// WPQ designs) — paper Case 3 / Figure 3.
    DuringEviction(usize),
    /// After step ⑤ completes, before the next access.
    AfterEviction,
}

impl CrashPoint {
    /// The five step-boundary crash points (excluding mid-eviction).
    pub fn step_boundaries() -> [CrashPoint; 5] {
        [
            CrashPoint::AfterCheckStash,
            CrashPoint::AfterAccessPosMap,
            CrashPoint::AfterLoadPath,
            CrashPoint::AfterUpdateStash,
            CrashPoint::AfterEviction,
        ]
    }
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrashPoint::AfterCheckStash => write!(f, "after step 1 (check stash)"),
            CrashPoint::AfterAccessPosMap => write!(f, "after step 2 (access PosMap)"),
            CrashPoint::AfterLoadPath => write!(f, "after step 3 (load path)"),
            CrashPoint::AfterUpdateStash => write!(f, "after step 4 (update stash)"),
            CrashPoint::DuringEviction(k) => write!(f, "during step 5 (after {k} persist units)"),
            CrashPoint::AfterEviction => write!(f, "after step 5 (eviction complete)"),
        }
    }
}

/// Report of what a crash destroyed and what the persistence domain saved.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashReport {
    /// Blocks lost from the volatile stash.
    pub stash_blocks_lost: usize,
    /// Entries lost from the volatile temporary PosMap.
    pub temp_entries_lost: usize,
    /// Data blocks the ADR reserve flushed out of committed WPQ rounds.
    pub wpq_data_flushed: usize,
    /// PosMap entries the ADR reserve flushed out of committed WPQ rounds.
    pub wpq_posmap_flushed: usize,
    /// Whether the design's stash survives (on-chip NVM stash).
    pub stash_durable: bool,
}

/// Typed failure raised by the hardened recovery path when damage cannot
/// be silently absorbed.
///
/// This is the `RecoveryError` half of the detect → classify → repair →
/// fail-safe taxonomy; the classification half is
/// [`psoram_nvm::FaultClass`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryError {
    /// A committed address has no surviving authenticated copy: recovery
    /// rolled it back (or forgot it) instead of serving corrupt data.
    UnrecoverableAddress {
        /// The logical block address that was rolled back.
        addr: u64,
        /// What the audit saw, verbatim.
        detail: String,
    },
    /// A WPQ batch frame failed CMAC verification.
    FrameVerification {
        /// The classified fault.
        class: psoram_nvm::FaultClass,
    },
    /// Bounded retry with backoff was exhausted (stuck read).
    RetryExhausted {
        /// The classified fault.
        class: psoram_nvm::FaultClass,
    },
    /// Recovery latched the controller into fail-safe poisoned state.
    Poisoned {
        /// The classified fault.
        class: psoram_nvm::FaultClass,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::UnrecoverableAddress { addr, detail } => {
                write!(f, "a{addr} unrecoverable: {detail}")
            }
            RecoveryError::FrameVerification { class } => {
                write!(f, "WPQ batch frame failed authentication ({class})")
            }
            RecoveryError::RetryExhausted { class } => {
                write!(f, "bounded retry exhausted ({class})")
            }
            RecoveryError::Poisoned { class } => {
                write!(f, "fail-safe poisoned ({class})")
            }
        }
    }
}

/// One detected device fault, classified and counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryIncident {
    /// The fault class recovery assigned to the damage.
    pub class: psoram_nvm::FaultClass,
    /// Persist units (tree slots / PosMap entries) affected.
    pub units: u64,
}

/// Outcome of a post-crash recovery (paper §4.3).
///
/// Produced by `PathOram::recover` / `RingOram::recover`; `consistent`
/// reports whether the recovered state passed the recoverability check,
/// and `violation` carries the first detected inconsistency verbatim so a
/// harness can attribute the failure to an exact crash point.
///
/// The device-fault fields (`repairs`, `rolled_back`, `incidents`,
/// `errors`, `poisoned`) stay at their defaults — and are skipped during
/// serialization — unless a fault plan is installed, keeping pre-existing
/// golden artifacts byte-identical. The skip-at-default behaviour is why
/// `Serialize`/`Deserialize` are hand-written rather than derived.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether the recovered state passed the consistency check.
    pub consistent: bool,
    /// Description of the first inconsistency found, if any.
    pub violation: Option<String>,
    /// Durably committed addresses the check examined.
    pub addresses_checked: usize,
    /// Damaged persist units whose committed value survived via a
    /// redundant authenticated copy.
    pub repairs: u64,
    /// Addresses recovery rolled back (or forgot) because no
    /// authenticated copy survived — detected, typed data loss.
    pub rolled_back: Vec<u64>,
    /// Detected device faults, classified and counted.
    pub incidents: Vec<RecoveryIncident>,
    /// Typed recovery errors raised while handling the damage.
    pub errors: Vec<RecoveryError>,
    /// Whether recovery latched the controller into fail-safe state.
    pub poisoned: bool,
    /// Persist units whose stored freshness record carried a stale (or
    /// rolled-back-to-genesis) version counter — detected replays.
    pub replays_detected: u64,
    /// Persist units whose stored record was authentic for a *different*
    /// unit — detected cross-address splices.
    pub splices_detected: u64,
}

impl Serialize for RecoveryReport {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("consistent".to_string(), self.consistent.to_value()),
            ("violation".to_string(), self.violation.to_value()),
            (
                "addresses_checked".to_string(),
                self.addresses_checked.to_value(),
            ),
        ];
        if self.repairs != 0 {
            fields.push(("repairs".to_string(), self.repairs.to_value()));
        }
        if !self.rolled_back.is_empty() {
            fields.push(("rolled_back".to_string(), self.rolled_back.to_value()));
        }
        if !self.incidents.is_empty() {
            fields.push(("incidents".to_string(), self.incidents.to_value()));
        }
        if !self.errors.is_empty() {
            fields.push(("errors".to_string(), self.errors.to_value()));
        }
        if self.poisoned {
            fields.push(("poisoned".to_string(), self.poisoned.to_value()));
        }
        if self.replays_detected != 0 {
            fields.push((
                "replays_detected".to_string(),
                self.replays_detected.to_value(),
            ));
        }
        if self.splices_detected != 0 {
            fields.push((
                "splices_detected".to_string(),
                self.splices_detected.to_value(),
            ));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for RecoveryReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| serde::DeError::custom("expected object for RecoveryReport"))?;
        fn optional<T: Deserialize + Default>(
            v: &serde::Value,
            key: &str,
        ) -> Result<T, serde::DeError> {
            match v.get(key) {
                Some(inner) => T::from_value(inner),
                None => Ok(T::default()),
            }
        }
        Ok(RecoveryReport {
            consistent: Deserialize::from_value(serde::object_field(
                fields,
                "consistent",
                "RecoveryReport",
            )?)?,
            violation: Deserialize::from_value(serde::object_field(
                fields,
                "violation",
                "RecoveryReport",
            )?)?,
            addresses_checked: Deserialize::from_value(serde::object_field(
                fields,
                "addresses_checked",
                "RecoveryReport",
            )?)?,
            repairs: optional(v, "repairs")?,
            rolled_back: optional(v, "rolled_back")?,
            incidents: optional(v, "incidents")?,
            errors: optional(v, "errors")?,
            poisoned: optional(v, "poisoned")?,
            replays_detected: optional(v, "replays_detected")?,
            splices_detected: optional(v, "splices_detected")?,
        })
    }
}

impl RecoveryReport {
    /// Builds a report from a recoverability-check result.
    pub fn from_check(result: Result<(), String>, addresses_checked: usize) -> Self {
        match result {
            Ok(()) => RecoveryReport {
                consistent: true,
                violation: None,
                addresses_checked,
                ..RecoveryReport::default()
            },
            Err(v) => RecoveryReport {
                consistent: false,
                violation: Some(v),
                addresses_checked,
                ..RecoveryReport::default()
            },
        }
    }

    /// `true` when recovery detected any device-level damage.
    pub fn saw_device_faults(&self) -> bool {
        !self.incidents.is_empty() || !self.rolled_back.is_empty() || self.poisoned
    }

    /// Total freshness violations (replays + splices) recovery detected.
    pub fn freshness_violations(&self) -> u64 {
        self.replays_detected + self.splices_detected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_report_from_check() {
        let ok = RecoveryReport::from_check(Ok(()), 7);
        assert!(ok.consistent && ok.violation.is_none() && ok.addresses_checked == 7);
        let bad = RecoveryReport::from_check(Err("a3: lost".into()), 2);
        assert!(!bad.consistent);
        assert_eq!(bad.violation.as_deref(), Some("a3: lost"));
    }

    #[test]
    fn device_fault_fields_are_invisible_when_defaulted() {
        // Golden-compatibility contract: a report with no device faults
        // serializes exactly as it did before the fields existed.
        let r = RecoveryReport::from_check(Ok(()), 3);
        let json = serde_json::to_string(&r).unwrap();
        assert!(!json.contains("repairs"));
        assert!(!json.contains("rolled_back"));
        assert!(!json.contains("incidents"));
        assert!(!json.contains("errors"));
        assert!(!json.contains("poisoned"));
        assert!(!json.contains("replays_detected"));
        assert!(!json.contains("splices_detected"));
        let back: RecoveryReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn device_fault_fields_round_trip_when_set() {
        let mut r = RecoveryReport::from_check(Ok(()), 1);
        r.repairs = 2;
        r.rolled_back = vec![7];
        r.incidents = vec![RecoveryIncident {
            class: psoram_nvm::FaultClass::TornFlush,
            units: 3,
        }];
        r.errors = vec![RecoveryError::UnrecoverableAddress {
            addr: 7,
            detail: "gone".into(),
        }];
        r.replays_detected = 4;
        r.splices_detected = 2;
        assert!(r.saw_device_faults());
        assert_eq!(r.freshness_violations(), 6);
        let json = serde_json::to_string(&r).unwrap();
        let back: RecoveryReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert!(back.errors[0].to_string().contains("a7"));
    }

    #[test]
    fn recovery_error_display() {
        use psoram_nvm::FaultClass;
        assert!(RecoveryError::FrameVerification {
            class: FaultClass::TornFlush
        }
        .to_string()
        .contains("torn_flush"));
        assert!(RecoveryError::RetryExhausted {
            class: FaultClass::TransientRead
        }
        .to_string()
        .contains("retry"));
        assert!(RecoveryError::Poisoned {
            class: FaultClass::MediaCorruption
        }
        .to_string()
        .contains("poisoned"));
    }

    #[test]
    fn display_names_all_points() {
        for p in CrashPoint::step_boundaries() {
            assert!(!p.to_string().is_empty());
        }
        assert!(CrashPoint::DuringEviction(3).to_string().contains('3'));
    }

    #[test]
    fn step_boundaries_are_distinct() {
        let pts = CrashPoint::step_boundaries();
        for (i, a) in pts.iter().enumerate() {
            for b in &pts[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
