//! Crash injection points within an ORAM access.

use serde::{Deserialize, Serialize};

/// Where within the five-step ORAM access a power failure strikes.
///
/// These mirror the case studies of paper §3.3: crashes after the PosMap
/// update (Case 1), after the path load (Case 2), and during/after the
/// eviction write-back (Case 3, Figure 3).
///
/// # Examples
///
/// ```
/// use psoram_core::CrashPoint;
///
/// let points = CrashPoint::step_boundaries();
/// assert_eq!(points.len(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CrashPoint {
    /// After step ① (stash check), before the PosMap is touched.
    AfterCheckStash,
    /// After step ② (PosMap access + remap) — paper Case 1.
    AfterAccessPosMap,
    /// After step ③ (path load into the stash) — paper Case 2.
    AfterLoadPath,
    /// After step ④ (stash update + backup creation).
    AfterUpdateStash,
    /// During step ⑤: after `k` persistence units have reached the NVM
    /// (direct writes for non-WPQ designs; committed atomic batches for
    /// WPQ designs) — paper Case 3 / Figure 3.
    DuringEviction(usize),
    /// After step ⑤ completes, before the next access.
    AfterEviction,
}

impl CrashPoint {
    /// The five step-boundary crash points (excluding mid-eviction).
    pub fn step_boundaries() -> [CrashPoint; 5] {
        [
            CrashPoint::AfterCheckStash,
            CrashPoint::AfterAccessPosMap,
            CrashPoint::AfterLoadPath,
            CrashPoint::AfterUpdateStash,
            CrashPoint::AfterEviction,
        ]
    }
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrashPoint::AfterCheckStash => write!(f, "after step 1 (check stash)"),
            CrashPoint::AfterAccessPosMap => write!(f, "after step 2 (access PosMap)"),
            CrashPoint::AfterLoadPath => write!(f, "after step 3 (load path)"),
            CrashPoint::AfterUpdateStash => write!(f, "after step 4 (update stash)"),
            CrashPoint::DuringEviction(k) => write!(f, "during step 5 (after {k} persist units)"),
            CrashPoint::AfterEviction => write!(f, "after step 5 (eviction complete)"),
        }
    }
}

/// Report of what a crash destroyed and what the persistence domain saved.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashReport {
    /// Blocks lost from the volatile stash.
    pub stash_blocks_lost: usize,
    /// Entries lost from the volatile temporary PosMap.
    pub temp_entries_lost: usize,
    /// Data blocks the ADR reserve flushed out of committed WPQ rounds.
    pub wpq_data_flushed: usize,
    /// PosMap entries the ADR reserve flushed out of committed WPQ rounds.
    pub wpq_posmap_flushed: usize,
    /// Whether the design's stash survives (on-chip NVM stash).
    pub stash_durable: bool,
}

/// Outcome of a post-crash recovery (paper §4.3).
///
/// Produced by `PathOram::recover` / `RingOram::recover`; `consistent`
/// reports whether the recovered state passed the recoverability check,
/// and `violation` carries the first detected inconsistency verbatim so a
/// harness can attribute the failure to an exact crash point.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Whether the recovered state passed the consistency check.
    pub consistent: bool,
    /// Description of the first inconsistency found, if any.
    pub violation: Option<String>,
    /// Durably committed addresses the check examined.
    pub addresses_checked: usize,
}

impl RecoveryReport {
    /// Builds a report from a recoverability-check result.
    pub fn from_check(result: Result<(), String>, addresses_checked: usize) -> Self {
        match result {
            Ok(()) => RecoveryReport {
                consistent: true,
                violation: None,
                addresses_checked,
            },
            Err(v) => RecoveryReport {
                consistent: false,
                violation: Some(v),
                addresses_checked,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_report_from_check() {
        let ok = RecoveryReport::from_check(Ok(()), 7);
        assert!(ok.consistent && ok.violation.is_none() && ok.addresses_checked == 7);
        let bad = RecoveryReport::from_check(Err("a3: lost".into()), 2);
        assert!(!bad.consistent);
        assert_eq!(bad.violation.as_deref(), Some("a3: lost"));
    }

    #[test]
    fn display_names_all_points() {
        for p in CrashPoint::step_boundaries() {
            assert!(!p.to_string().is_empty());
        }
        assert!(CrashPoint::DuringEviction(3).to_string().contains('3'));
    }

    #[test]
    fn step_boundaries_are_distinct() {
        let pts = CrashPoint::step_boundaries();
        for (i, a) in pts.iter().enumerate() {
            for b in &pts[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
