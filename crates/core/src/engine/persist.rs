//! The WPQ persist-round protocol and crash/recovery state machine.

use std::collections::VecDeque;

use psoram_nvm::{
    Conviction, FaultClass, FaultConfig, FaultPlan, FaultStats, PersistenceDomain, ReadFault,
    RoundFate, WearConfig, WearEngine, WearStats, WpqEntry, WpqError, WpqStats,
};
use psoram_obsv::{DeviceFaultKind, Event, Tap};
use serde::{Deserialize, Serialize};

use crate::crash::{CrashPoint, RecoveryIncident, RecoveryReport};
use crate::types::OramError;

/// Maps the NVM-layer fault class onto the dependency-free observability
/// vocabulary.
pub(crate) fn fault_kind(class: FaultClass) -> DeviceFaultKind {
    match class {
        FaultClass::TornFlush => DeviceFaultKind::TornFlush,
        FaultClass::SignalLoss => DeviceFaultKind::SignalLoss,
        FaultClass::DuplicatedSignal => DeviceFaultKind::DuplicatedSignal,
        FaultClass::MediaCorruption => DeviceFaultKind::MediaCorruption,
        FaultClass::TransientRead => DeviceFaultKind::TransientRead,
        FaultClass::StaleReplay => DeviceFaultKind::StaleReplay,
        FaultClass::CrossSplice => DeviceFaultKind::CrossSplice,
        FaultClass::WearOut => DeviceFaultKind::WearOut,
    }
}

/// Outcome of the wear-coupled draw over one media path load, after the
/// retirement layer has had its say.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WearReadOutcome {
    /// No wear fault on this load.
    None,
    /// Transient drift failure: the load succeeds after `attempts`
    /// retries with backoff.
    Transient {
        /// Failed attempts before the read goes through.
        attempts: u32,
    },
    /// The hottest line was convicted and retired onto a spare; its
    /// content was repaired from the redundant copy. The remap is staged
    /// and becomes durable at the next commit round.
    Retired {
        /// The convicted physical line.
        line: u64,
        /// The spare now serving its address.
        spare: u64,
    },
    /// The hottest line is stuck past its budget and no spare capacity
    /// is left (or the scheme has no retirement layer): the controller
    /// must fail safe.
    Exhausted {
        /// The dead physical line.
        line: u64,
    },
}

/// What a crash's device faults destroyed in the round whose media
/// programming the power failure interrupted. Indexes refer to the
/// controller's record of the last applied round's persist units.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundDamage {
    /// Damaged data units (tree-slot writes), by last-round index.
    pub data_units: Vec<usize>,
    /// Damaged PosMap units (persisted map entries), by last-round index.
    pub posmap_units: Vec<usize>,
    /// Data unit rolled back to its authentic prior version (replay).
    pub replayed_data: Option<usize>,
    /// PosMap unit rolled back to its authentic prior version (replay).
    pub replayed_posmap: Option<usize>,
    /// Pair of data units whose records and contents were swapped.
    pub spliced_data: Option<(usize, usize)>,
    /// Pair of PosMap units whose records and contents were swapped.
    pub spliced_posmap: Option<(usize, usize)>,
}

impl RoundDamage {
    /// `true` when no unit was damaged, replayed, or spliced.
    pub fn is_empty(&self) -> bool {
        self.data_units.is_empty()
            && self.posmap_units.is_empty()
            && self.replayed_data.is_none()
            && self.replayed_posmap.is_none()
            && self.spliced_data.is_none()
            && self.spliced_posmap.is_none()
    }
}

/// Counters the engine accumulates across the life of a controller.
///
/// These survive crashes and recoveries by construction: the engine is
/// part of the controller model, not of the simulated volatile state, so
/// a [`PersistEngine::crash`] discards the open WPQ round but never the
/// accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Crashes executed.
    pub crashes: u64,
    /// Recoveries completed.
    pub recoveries: u64,
    /// Recoveries whose consistency check failed.
    pub recovery_failures: u64,
    /// Persist rounds split early because a WPQ ran out of room.
    pub wpq_stalls: u64,
}

impl psoram_obsv::MetricsSource for EngineStats {
    fn publish(&self, prefix: &str, reg: &mut psoram_obsv::MetricsRegistry) {
        use psoram_obsv::MetricsRegistry as R;
        reg.set_counter(&R::key(prefix, "crashes"), self.crashes);
        reg.set_counter(&R::key(prefix, "recoveries"), self.recoveries);
        reg.set_counter(&R::key(prefix, "recovery_failures"), self.recovery_failures);
        reg.set_counter(&R::key(prefix, "wpq_stalls"), self.wpq_stalls);
    }
}

/// The shared persist-round engine: one audited implementation of the
/// paper's crash-consistency protocol, generic over the persist-unit
/// types (`D` data units, `P` PosMap units).
///
/// The engine owns:
///
/// * the paired data/PosMap WPQs ([`PersistenceDomain`]) and the
///   begin/stage/commit round protocol with typed errors;
/// * crash arming ([`PersistEngine::inject_crash`]) and scheduling
///   ([`PersistEngine::schedule_crash`]) against the access-attempt
///   counter;
/// * the crashed-state latch and the recovery bookkeeping
///   ([`PersistEngine::finish_recovery`], [`PersistEngine::last_recovery`]);
/// * the crash/recovery/stall counters ([`EngineStats`]).
///
/// Controllers keep only protocol policy: what units to stage, when to
/// open a round, and how to apply a drained round to their stores.
#[derive(Debug)]
pub struct PersistEngine<D, P> {
    domain: PersistenceDomain<D, P>,
    crash_plan: Option<CrashPoint>,
    /// Pending scheduled crashes as `(access_attempt_index, point)`,
    /// sorted ascending; consumed as access attempts reach each index.
    crash_schedule: VecDeque<(u64, CrashPoint)>,
    /// Total access attempts begun, including attempts that crashed.
    access_attempts: u64,
    crashed: bool,
    last_recovery: Option<RecoveryReport>,
    stats: EngineStats,
    tap: Tap,
    /// Seeded device-fault adversary, when the backend is made injectable.
    device: Option<FaultPlan>,
    /// Endurance bookkeeping under the persistence domain, when the
    /// device is made to wear.
    wear: Option<WearEngine>,
    /// Fail-safe latch: damage that could neither be repaired nor retried
    /// past. Latched until the instance is rebuilt.
    poisoned: Option<FaultClass>,
    /// Incidents drawn at the last crash, consumed by the next recovery.
    pending_incidents: Vec<RecoveryIncident>,
    /// The counter-tree root persisted by the last committed round.
    persisted_root: Option<[u8; 16]>,
}

impl<D, P> PersistEngine<D, P> {
    /// Creates an engine over fresh WPQs of the given capacities.
    pub fn new(data_capacity: usize, posmap_capacity: usize) -> Self {
        PersistEngine {
            domain: PersistenceDomain::new(data_capacity, posmap_capacity),
            crash_plan: None,
            crash_schedule: VecDeque::new(),
            access_attempts: 0,
            crashed: false,
            last_recovery: None,
            stats: EngineStats::default(),
            tap: Tap::detached(),
            device: None,
            wear: None,
            poisoned: None,
            pending_incidents: Vec::new(),
            persisted_root: None,
        }
    }

    /// Wires an observability tap into the engine and both WPQs. Round
    /// begin/commit markers and per-queue push/reject/drain events are
    /// stamped with the tap's published clock.
    pub fn set_tap(&mut self, tap: Tap) {
        self.domain.set_tap(tap.clone());
        self.tap = tap;
    }

    /// Engine-accumulated counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Accumulated statistics of the (data, PosMap) WPQs. Like
    /// [`EngineStats`], these survive crashes and recoveries.
    pub fn wpq_stats(&self) -> (WpqStats, WpqStats) {
        (
            self.domain.data_wpq().stats(),
            self.domain.posmap_wpq().stats(),
        )
    }

    // ── access-attempt prologue & crash arming ──────────────────────────

    /// Starts one access attempt: rejects while crashed, arms the next
    /// scheduled crash plan if its index has arrived, and counts the
    /// attempt.
    ///
    /// # Errors
    ///
    /// [`OramError::Crashed`] while the controller is crashed.
    pub fn begin_attempt(&mut self) -> Result<(), OramError> {
        if let Some(class) = self.poisoned {
            return Err(OramError::Poisoned { class });
        }
        if self.crashed {
            return Err(OramError::Crashed);
        }
        // Scheduled crash plans arm when their access attempt begins.
        if let Some(&(idx, point)) = self.crash_schedule.front() {
            if idx == self.access_attempts {
                self.crash_schedule.pop_front();
                self.crash_plan = Some(point);
            }
        }
        self.access_attempts += 1;
        Ok(())
    }

    /// Consumes a matching armed crash plan: returns `true` (and disarms)
    /// if `point` is exactly the armed plan, in which case the caller must
    /// run its crash procedure.
    pub fn take_crash(&mut self, point: CrashPoint) -> bool {
        if self.crash_plan == Some(point) {
            self.crash_plan = None;
            true
        } else {
            false
        }
    }

    /// The armed [`CrashPoint::DuringEviction`] persist-unit index, if any
    /// (peeked, not consumed — pair with [`PersistEngine::disarm_crash`]).
    pub fn armed_eviction_crash(&self) -> Option<usize> {
        match self.crash_plan {
            Some(CrashPoint::DuringEviction(k)) => Some(k),
            _ => None,
        }
    }

    /// Arms a crash to fire at `point` during the next access.
    pub fn inject_crash(&mut self, point: CrashPoint) {
        self.crash_plan = Some(point);
    }

    /// Disarms a pending crash plan that has not fired.
    pub fn disarm_crash(&mut self) {
        self.crash_plan = None;
    }

    /// Schedules a crash to arm when access attempt `access_index` begins
    /// (0-based over every [`PersistEngine::begin_attempt`], including
    /// attempts that themselves crashed). Entries must be appended in
    /// non-decreasing index order; an index already in the past is
    /// silently never reached.
    pub fn schedule_crash(&mut self, access_index: u64, point: CrashPoint) {
        debug_assert!(
            self.crash_schedule
                .back()
                .is_none_or(|&(i, _)| i <= access_index),
            "crash schedule must be in non-decreasing access order"
        );
        self.crash_schedule.push_back((access_index, point));
    }

    /// Drops all scheduled crashes that have not fired.
    pub fn clear_crash_schedule(&mut self) {
        self.crash_schedule.clear();
    }

    /// Total access attempts so far (the index the next attempt carries
    /// for [`PersistEngine::schedule_crash`]).
    pub fn access_attempts(&self) -> u64 {
        self.access_attempts
    }

    /// `true` between a crash and the matching recovery.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    // ── the persist-round protocol ──────────────────────────────────────

    /// Drainer *start* signal: opens an atomic round on both WPQs.
    ///
    /// # Errors
    ///
    /// [`WpqError::BatchAlreadyOpen`] if a round is already open.
    pub fn begin_round(&mut self) -> Result<(), WpqError> {
        self.domain.begin_round()?;
        self.tap.emit(|| Event::RoundBegin {
            cycle: self.tap.now(),
        });
        Ok(())
    }

    /// Stages one data persist unit into the open round.
    ///
    /// # Errors
    ///
    /// [`WpqError::NoBatchOpen`] / [`WpqError::Full`] from the data WPQ.
    pub fn push_data(&mut self, entry: WpqEntry<D>) -> Result<(), WpqError> {
        self.domain.push_data(entry)
    }

    /// Stages one PosMap persist unit into the open round.
    ///
    /// # Errors
    ///
    /// [`WpqError::NoBatchOpen`] / [`WpqError::Full`] from the PosMap WPQ.
    pub fn push_posmap(&mut self, entry: WpqEntry<P>) -> Result<(), WpqError> {
        self.domain.push_posmap(entry)
    }

    /// Drainer *end* signal: the atomic commit point of the open round.
    ///
    /// # Errors
    ///
    /// [`WpqError::NoBatchOpen`] if no round is open on either queue.
    pub fn commit_round(&mut self) -> Result<(), WpqError> {
        let (data_units, posmap_units) = (
            self.domain.data_wpq().open_len() as u64,
            self.domain.posmap_wpq().open_len() as u64,
        );
        self.domain.commit_round()?;
        // The wear-leveling mapping (staged gap moves / retirements)
        // rides the same atomic commit point as the round itself: one
        // failure-atomic register update in the persistence domain.
        if let Some(w) = self.wear.as_mut() {
            w.commit();
        }
        self.tap.emit(|| Event::RoundCommit {
            cycle: self.tap.now(),
            data_units,
            posmap_units,
        });
        Ok(())
    }

    /// Drains every committed entry from both queues, in commit order.
    /// With wear enabled, each drained data unit programs its media line
    /// through the current (staged) leveling mapping.
    pub fn drain(&mut self) -> (Vec<WpqEntry<D>>, Vec<WpqEntry<P>>) {
        let (d, p) = self.domain.drain();
        if let Some(w) = self.wear.as_mut() {
            for e in &d {
                w.record_write(e.addr);
            }
        }
        (d, p)
    }

    /// `true` when the data WPQ has no room for another unit.
    pub fn data_is_full(&self) -> bool {
        self.domain.data_wpq().remaining() == 0
    }

    /// `true` when the PosMap WPQ has no room for another unit.
    pub fn posmap_is_full(&self) -> bool {
        self.domain.posmap_wpq().remaining() == 0
    }

    /// Counts one stall: a round split early because a WPQ ran out of
    /// room (the caller commits, drains, applies, and reopens).
    pub fn note_stall(&mut self) {
        self.stats.wpq_stalls += 1;
        self.tap.emit(|| Event::WpqStall {
            cycle: self.tap.now(),
        });
    }

    // ── crash & recovery ────────────────────────────────────────────────

    /// Models a power failure while a round is being assembled: opens a
    /// round and stages `entries`, deliberately without the end signal,
    /// so the subsequent [`PersistEngine::crash`] discards them. Push
    /// errors are irrelevant — whatever made it into the open batch is
    /// lost to the crash anyway.
    pub fn stage_abandoned_round(&mut self, entries: Vec<WpqEntry<D>>) {
        let _ = self.domain.begin_round();
        for e in entries {
            let _ = self.domain.push_data(e);
        }
    }

    /// Executes the power failure: latches the crashed state, counts it,
    /// and returns what the ADR flush preserves — every *committed* round,
    /// with any open round discarded.
    pub fn crash(&mut self) -> (Vec<WpqEntry<D>>, Vec<WpqEntry<P>>) {
        self.stats.crashes += 1;
        self.crashed = true;
        self.tap.emit(|| Event::Crash {
            cycle: self.tap.now(),
        });
        let (d, p) = self.domain.crash();
        if let Some(w) = self.wear.as_mut() {
            // A staged gap move or retirement that missed its commit
            // round never happened: recovery sees one consistent mapping.
            w.revert();
            // The ADR flush still programs the committed rounds' cells —
            // wear is device truth and is never rolled back.
            for e in &d {
                w.record_crash_write(e.addr);
            }
        }
        (d, p)
    }

    /// Completes a recovery: clears the crashed state, counts the
    /// recovery (and the failure, if the verdict is inconsistent), and
    /// retains the report for [`PersistEngine::last_recovery`].
    pub fn finish_recovery(&mut self, report: RecoveryReport) -> RecoveryReport {
        self.stats.recoveries += 1;
        self.crashed = false;
        if !report.consistent {
            self.stats.recovery_failures += 1;
        }
        for inc in &report.incidents {
            let (kind, units) = (fault_kind(inc.class), inc.units);
            self.tap.emit(|| Event::FaultDetected {
                kind,
                units,
                cycle: self.tap.now(),
            });
        }
        if report.repairs > 0 || !report.rolled_back.is_empty() {
            let (repaired, rolled_back) = (report.repairs, report.rolled_back.len() as u64);
            self.tap.emit(|| Event::FaultRepaired {
                repaired,
                rolled_back,
                cycle: self.tap.now(),
            });
        }
        self.tap.emit(|| Event::Recovery {
            consistent: report.consistent,
            cycle: self.tap.now(),
        });
        self.last_recovery = Some(report.clone());
        report
    }

    /// The report of the most recent recovery, if any.
    pub fn last_recovery(&self) -> Option<&RecoveryReport> {
        self.last_recovery.as_ref()
    }

    // ── device-fault injection (tentpole) ───────────────────────────────

    /// Installs a seeded [`FaultPlan`] over the WPQ/NVM backend, making
    /// the persistence domain adversarial. The plan owns its own RNG
    /// stream: installing a fully disabled plan leaves the controller
    /// bit-identical to an uninstrumented one.
    pub fn install_fault_plan(&mut self, seed: u64, cfg: FaultConfig) {
        self.device = Some(FaultPlan::new(seed, cfg));
    }

    /// Seals both WPQ batch frames with per-queue CMAC keys derived from
    /// `key`, so every committed round carries an authentication tag.
    pub fn seal_frames(&mut self, key: &[u8; 16]) {
        self.domain.seal_frames(key);
    }

    /// `true` when a device fault plan is installed.
    pub fn device_mode(&self) -> bool {
        self.device.is_some()
    }

    /// Ground-truth injection counters of the installed plan, if any.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.device.as_ref().map(FaultPlan::stats)
    }

    /// Entropy from the plan's stream, for choosing which byte of a
    /// damaged unit to flip. Returns 0 with no plan installed.
    pub fn device_entropy(&mut self) -> u64 {
        self.device.as_mut().map_or(0, FaultPlan::entropy)
    }

    /// Draws the outcome of one media path load. Always
    /// [`ReadFault::None`] with no plan installed.
    pub fn read_fault(&mut self) -> ReadFault {
        self.device
            .as_mut()
            .map_or(ReadFault::None, |p| p.read_fault())
    }

    /// Draws what the crash's device faults destroy in the round whose
    /// media programming was interrupted (`data_len`/`posmap_len` persist
    /// units), records the classified incidents for the next recovery,
    /// and returns the damaged unit indexes for the controller to apply.
    ///
    /// Draw order is fixed (data fate, posmap fate, then per-unit flips)
    /// so the schedule is deterministic in the plan's seed alone.
    pub fn draw_crash_damage(&mut self, data_len: usize, posmap_len: usize) -> RoundDamage {
        let Some(plan) = self.device.as_mut() else {
            return RoundDamage::default();
        };
        let mut damage = RoundDamage::default();
        let data_fate = plan.round_fate(data_len);
        let posmap_fate = plan.round_fate(posmap_len);
        for (fate, len, units) in [
            (data_fate, data_len, &mut damage.data_units),
            (posmap_fate, posmap_len, &mut damage.posmap_units),
        ] {
            match fate {
                RoundFate::Intact => {}
                RoundFate::Lost => units.extend(0..len),
                RoundFate::Torn { kept } => units.extend(kept..len),
                // A duplicated end signal replays idempotent slot writes:
                // no media damage, but the incident is accounted.
                RoundFate::Duplicated => {}
            }
        }
        // Bit rot strikes units that survived the fate draw.
        let mut flips = 0u64;
        for (len, units) in [
            (data_len, &mut damage.data_units),
            (posmap_len, &mut damage.posmap_units),
        ] {
            for i in 0..len {
                if plan.unit_corrupted() && !units.contains(&i) {
                    units.push(i);
                    flips += 1;
                }
            }
            units.sort_unstable();
        }
        for (fate, len) in [(data_fate, data_len), (posmap_fate, posmap_len)] {
            let class = match fate {
                RoundFate::Intact => None,
                RoundFate::Lost => Some(FaultClass::SignalLoss),
                RoundFate::Torn { .. } => Some(FaultClass::TornFlush),
                RoundFate::Duplicated => Some(FaultClass::DuplicatedSignal),
            };
            if let Some(class) = class {
                self.pending_incidents.push(RecoveryIncident {
                    class,
                    units: len as u64,
                });
            }
        }
        if flips > 0 {
            self.pending_incidents.push(RecoveryIncident {
                class: FaultClass::MediaCorruption,
                units: flips,
            });
        }
        // Freshness adversary: replay a stale version of one last-round
        // unit, and/or splice two units' records across addresses. The
        // draws always consume entropy (schedule invariance); each domain
        // draws in a fixed order: data replay, posmap replay, data
        // splice, posmap splice.
        damage.replayed_data = plan.replay_fate(data_len);
        damage.replayed_posmap = plan.replay_fate(posmap_len);
        damage.spliced_data = plan.splice_fate(data_len);
        damage.spliced_posmap = plan.splice_fate(posmap_len);
        // Replay/splice draws are *attempts*: the controller confirms the
        // ones that actually land on media (via `confirm_stale_replay` /
        // `confirm_cross_splice`), which is when the ground-truth counter
        // and the incident record are written.
        damage
    }

    /// Records that the controller applied a drawn crash-time replay:
    /// one persist unit now carries an authentic-but-stale snapshot.
    /// Counts the ground truth and files the incident for recovery.
    pub fn confirm_stale_replay(&mut self) {
        if let Some(p) = self.device.as_mut() {
            p.confirm_stale_replay();
        }
        self.pending_incidents.push(RecoveryIncident {
            class: FaultClass::StaleReplay,
            units: 1,
        });
    }

    /// Records that the controller applied a drawn cross-address splice:
    /// two persist units swapped their authentic records. Counts the
    /// ground truth and files the two-unit incident for recovery.
    pub fn confirm_cross_splice(&mut self) {
        if let Some(p) = self.device.as_mut() {
            p.confirm_cross_splice();
        }
        self.pending_incidents.push(RecoveryIncident {
            class: FaultClass::CrossSplice,
            units: 2,
        });
    }

    /// Draws a fetch-path replay attempt from the installed plan: the
    /// adversary's pick of which loaded unit to serve stale, if any.
    /// Always `None` with no plan installed, and the draw is consumed
    /// unconditionally when a plan exists (schedule invariance).
    pub fn read_replay(&mut self) -> Option<u64> {
        self.device.as_mut().and_then(FaultPlan::read_replay)
    }

    /// Confirms a drawn fetch-path replay actually served a stale unit
    /// (the pick landed on a unit with recorded history), keeping the
    /// plan's counters exact ground truth.
    pub fn confirm_read_replay(&mut self) {
        if let Some(p) = self.device.as_mut() {
            p.confirm_read_replay();
        }
    }

    // ── endurance adversary (wear) ──────────────────────────────────────

    /// Enables the endurance model over a device of `lines` media lines:
    /// per-line write counts, seeded cell budgets, and the configured
    /// leveling/retirement scheme, all under the persistence domain.
    /// Without an installed fault plan the wear engine only *accounts*
    /// (lifetime campaigns); with one, hot lines progressively fault.
    pub fn enable_wear(&mut self, seed: u64, lines: u64, cfg: WearConfig) {
        self.wear = Some(WearEngine::new(seed, lines, cfg));
    }

    /// `true` when the wear engine is enabled.
    pub fn wear_mode(&self) -> bool {
        self.wear.is_some()
    }

    /// The wear engine's accumulated counters, if enabled.
    pub fn wear_stats(&self) -> Option<WearStats> {
        self.wear.as_ref().map(WearEngine::stats)
    }

    /// The wear engine itself (metrics publication, campaign queries).
    pub fn wear_engine(&self) -> Option<&WearEngine> {
        self.wear.as_ref()
    }

    /// Digest of the durable leveling/retirement mapping, if wear is
    /// enabled — `None` otherwise, so wear-free state digests are
    /// byte-identical to pre-endurance builds.
    pub fn wear_digest(&self) -> Option<u64> {
        self.wear.as_ref().map(WearEngine::mapping_digest)
    }

    /// Draws the wear-coupled outcome of one media path load over the
    /// `addrs` the load touches. Inert (no entropy) unless both the wear
    /// engine and a fault plan are installed; the plan's own gate then
    /// keeps a wear-free fault mix schedule-identical to before.
    ///
    /// A stuck draw convicts the hottest line: under the Remap scheme
    /// with spares left it is retired (staged; durable at the next
    /// commit round) and the content repaired from the redundant copy;
    /// otherwise the device is exhausted and the caller must fail safe.
    pub fn wear_read_fault(&mut self, addrs: &[u64]) -> WearReadOutcome {
        let (Some(wear), Some(plan)) = (self.wear.as_mut(), self.device.as_mut()) else {
            return WearReadOutcome::None;
        };
        let (line, frac) = wear.hottest(addrs);
        match plan.wear_fault(frac) {
            ReadFault::None => WearReadOutcome::None,
            ReadFault::Transient { attempts } => WearReadOutcome::Transient { attempts },
            ReadFault::Stuck => match wear.convict(line) {
                Conviction::Retired { spare } => {
                    self.pending_incidents.push(RecoveryIncident {
                        class: FaultClass::WearOut,
                        units: 1,
                    });
                    WearReadOutcome::Retired { line, spare }
                }
                Conviction::Exhausted => WearReadOutcome::Exhausted { line },
            },
        }
    }

    /// Atomically persists the counter-tree root digest inside the
    /// current round's commit ceremony. In the model this is a single
    /// 16-byte failure-atomic register write in the persistence domain.
    pub fn persist_root(&mut self, root: [u8; 16]) {
        self.persisted_root = Some(root);
    }

    /// The most recently persisted counter-tree root, if any.
    pub fn persisted_root(&self) -> Option<[u8; 16]> {
        self.persisted_root
    }

    /// Takes the incidents drawn since the last recovery (ground truth of
    /// what the crash damaged, for the recovery report).
    pub fn take_incidents(&mut self) -> Vec<RecoveryIncident> {
        std::mem::take(&mut self.pending_incidents)
    }

    /// Latches the fail-safe poisoned state: every subsequent access
    /// fails with [`OramError::Poisoned`] until the instance is rebuilt.
    pub fn poison(&mut self, class: FaultClass) {
        self.poisoned = Some(class);
        let kind = fault_kind(class);
        self.tap.emit(|| Event::Poisoned {
            kind,
            cycle: self.tap.now(),
        });
    }

    /// The latched fail-safe class, if the controller is poisoned.
    pub fn poisoned(&self) -> Option<FaultClass> {
        self.poisoned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(addr: u64) -> WpqEntry<u32> {
        WpqEntry {
            addr,
            value: addr as u32,
        }
    }

    #[test]
    fn round_trip_commit_and_drain() {
        let mut e: PersistEngine<u32, u32> = PersistEngine::new(4, 4);
        e.begin_round().unwrap();
        e.push_data(entry(1)).unwrap();
        e.push_posmap(entry(2)).unwrap();
        e.commit_round().unwrap();
        let (d, p) = e.drain();
        assert_eq!(d.len(), 1);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn crash_discards_open_round_but_keeps_committed() {
        let mut e: PersistEngine<u32, u32> = PersistEngine::new(4, 4);
        e.begin_round().unwrap();
        e.push_data(entry(1)).unwrap();
        e.commit_round().unwrap();
        e.stage_abandoned_round(vec![entry(2), entry(3)]);
        let (d, _) = e.crash();
        assert_eq!(d.len(), 1, "only the committed round survives");
        assert!(e.is_crashed());
    }

    #[test]
    fn scheduled_crash_arms_at_its_attempt_index() {
        let mut e: PersistEngine<u32, u32> = PersistEngine::new(4, 4);
        e.schedule_crash(1, CrashPoint::AfterLoadPath);
        e.begin_attempt().unwrap();
        assert!(!e.take_crash(CrashPoint::AfterLoadPath), "not yet armed");
        e.begin_attempt().unwrap();
        assert!(e.take_crash(CrashPoint::AfterLoadPath));
        assert!(!e.take_crash(CrashPoint::AfterLoadPath), "consumed");
    }

    #[test]
    fn counters_survive_crash_and_recovery() {
        // Satellite invariant: the engine-accumulated stall/full counters
        // are controller-model state, not simulated volatile state — a
        // crash plus recovery must not reset them.
        let mut e: PersistEngine<u32, u32> = PersistEngine::new(1, 1);
        e.begin_round().unwrap();
        e.push_data(entry(1)).unwrap();
        assert!(e.data_is_full());
        e.note_stall();
        assert!(e.push_data(entry(2)).is_err(), "full WPQ rejects the push");
        e.commit_round().unwrap();
        let before_engine = e.stats();
        let (before_data, before_posmap) = e.wpq_stats();
        assert_eq!(before_engine.wpq_stalls, 1);
        assert_eq!(before_data.full_rejections, 1);

        let _ = e.crash();
        let report = e.finish_recovery(RecoveryReport::from_check(Ok(()), 0));
        assert!(report.consistent);
        assert!(!e.is_crashed());

        let after_engine = e.stats();
        let (after_data, after_posmap) = e.wpq_stats();
        assert_eq!(after_engine.wpq_stalls, before_engine.wpq_stalls);
        assert_eq!(after_data.full_rejections, before_data.full_rejections);
        assert_eq!(after_data.entries_pushed, before_data.entries_pushed);
        assert_eq!(after_posmap, before_posmap);
        assert_eq!(after_engine.crashes, 1);
        assert_eq!(after_engine.recoveries, 1);
        assert_eq!(after_engine.recovery_failures, 0);
    }

    #[test]
    fn no_plan_means_no_damage_and_no_read_faults() {
        let mut e: PersistEngine<u32, u32> = PersistEngine::new(4, 4);
        assert!(!e.device_mode());
        assert!(e.draw_crash_damage(8, 8).is_empty());
        assert_eq!(e.read_fault(), ReadFault::None);
        assert!(e.take_incidents().is_empty());
        assert!(e.fault_stats().is_none());
    }

    #[test]
    fn device_damage_is_deterministic_in_the_seed() {
        let mk = || {
            let mut e: PersistEngine<u32, u32> = PersistEngine::new(4, 4);
            e.install_fault_plan(99, FaultConfig::aggressive());
            let mut all = Vec::new();
            for _ in 0..50 {
                all.push(e.draw_crash_damage(6, 3));
            }
            (all, e.take_incidents(), e.fault_stats())
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn aggressive_plan_damages_something_and_classifies_it() {
        let mut e: PersistEngine<u32, u32> = PersistEngine::new(4, 4);
        e.install_fault_plan(7, FaultConfig::aggressive());
        let mut damaged = 0usize;
        for _ in 0..100 {
            let d = e.draw_crash_damage(6, 3);
            for u in d.data_units.iter().chain(&d.posmap_units) {
                assert!(*u < 6);
                damaged += 1;
            }
        }
        assert!(damaged > 0, "aggressive mix never damaged a unit");
        let incidents = e.take_incidents();
        assert!(!incidents.is_empty());
        assert!(e.take_incidents().is_empty(), "incidents are consumed");
        assert!(e.fault_stats().unwrap().total_injected() > 0);
    }

    #[test]
    fn replay_mix_draws_replays_and_splices_in_range() {
        let mut e: PersistEngine<u32, u32> = PersistEngine::new(4, 4);
        e.install_fault_plan(11, FaultConfig::replay_mix());
        let (mut replays, mut splices) = (0u64, 0u64);
        for _ in 0..200 {
            let d = e.draw_crash_damage(6, 3);
            // Draws are attempts; the controller confirms the applied
            // ones — modeled here by confirming every draw.
            if let Some(i) = d.replayed_data {
                assert!(i < 6);
                replays += 1;
                e.confirm_stale_replay();
            }
            if let Some(i) = d.replayed_posmap {
                assert!(i < 3);
                replays += 1;
                e.confirm_stale_replay();
            }
            if let Some((i, j)) = d.spliced_data {
                assert!(i < 6 && j < 6 && i != j);
                splices += 1;
                e.confirm_cross_splice();
            }
            if let Some((i, j)) = d.spliced_posmap {
                assert!(i < 3 && j < 3 && i != j);
                splices += 1;
                e.confirm_cross_splice();
            }
        }
        assert!(replays > 0, "replay mix never replayed a unit");
        assert!(splices > 0, "replay mix never spliced a pair");
        let incidents = e.take_incidents();
        assert!(incidents.iter().any(|i| i.class == FaultClass::StaleReplay));
        assert!(incidents.iter().any(|i| i.class == FaultClass::CrossSplice));
        let stats = e.fault_stats().unwrap();
        assert_eq!(stats.stale_replays, replays);
        assert_eq!(stats.cross_splices, splices);
    }

    #[test]
    fn wear_is_inert_until_enabled_and_without_a_plan() {
        let mut e: PersistEngine<u32, u32> = PersistEngine::new(4, 4);
        assert!(!e.wear_mode());
        assert_eq!(e.wear_digest(), None);
        assert_eq!(e.wear_read_fault(&[0, 64]), WearReadOutcome::None);
        e.enable_wear(
            3,
            64,
            psoram_nvm::WearConfig::stress(psoram_nvm::WearScheme::Remap),
        );
        // Wear engine alone (no fault plan): accounting only, no faults.
        assert_eq!(e.wear_read_fault(&[0, 64]), WearReadOutcome::None);
        assert!(e.wear_digest().is_some());
    }

    #[test]
    fn drained_writes_wear_lines_and_commit_rounds_seal_the_mapping() {
        let mut e: PersistEngine<u32, u32> = PersistEngine::new(8, 8);
        let mut cfg = psoram_nvm::WearConfig::paper_default(psoram_nvm::WearScheme::StartGap);
        cfg.gap_interval = 1; // every write stages a gap move
        e.enable_wear(7, 16, cfg);
        let d0 = e.wear_digest().unwrap();

        e.begin_round().unwrap();
        e.push_data(entry(0)).unwrap();
        e.push_data(entry(64)).unwrap();
        e.commit_round().unwrap();
        let _ = e.drain();
        let stats = e.wear_stats().unwrap();
        assert_eq!(stats.gap_moves, 2);
        assert!(stats.writes_recorded >= 4, "2 drains + 2 gap copies");
        // The gap moves staged during the drain are not durable yet...
        assert_eq!(e.wear_digest().unwrap(), d0);
        // ...until the next round commits.
        e.begin_round().unwrap();
        e.push_data(entry(128)).unwrap();
        e.commit_round().unwrap();
        assert_ne!(e.wear_digest().unwrap(), d0, "commit seals the mapping");
        let _ = e.drain();
    }

    #[test]
    fn crash_reverts_staged_mapping_but_keeps_wear_truth() {
        let mut e: PersistEngine<u32, u32> = PersistEngine::new(8, 8);
        let mut cfg = psoram_nvm::WearConfig::paper_default(psoram_nvm::WearScheme::StartGap);
        cfg.gap_interval = 1;
        e.enable_wear(7, 16, cfg);
        let d0 = e.wear_digest().unwrap();
        e.begin_round().unwrap();
        e.push_data(entry(0)).unwrap();
        e.commit_round().unwrap();
        let _ = e.drain(); // stages one gap move
        let writes_before = e.wear_stats().unwrap().writes_recorded;
        let _ = e.crash();
        assert_eq!(e.wear_digest().unwrap(), d0, "crash rolls the mapping back");
        let s = e.wear_stats().unwrap();
        assert_eq!(s.map_reverts, 1);
        assert_eq!(s.writes_recorded, writes_before, "wear truth never reverts");
    }

    #[test]
    fn wear_read_fault_convicts_and_retires_under_remap() {
        let mut e: PersistEngine<u32, u32> = PersistEngine::new(4, 4);
        e.install_fault_plan(5, FaultConfig::wear_only());
        let mut cfg = psoram_nvm::WearConfig::stress(psoram_nvm::WearScheme::Remap);
        cfg.preage_writes = 2000; // every line far past its budget
        e.enable_wear(5, 16, cfg);
        let mut retired = 0;
        let mut transients = 0;
        for _ in 0..400 {
            match e.wear_read_fault(&[0]) {
                WearReadOutcome::Retired { .. } => retired += 1,
                WearReadOutcome::Transient { .. } => transients += 1,
                WearReadOutcome::Exhausted { .. } => break,
                WearReadOutcome::None => {}
            }
        }
        assert!(retired > 0, "past-budget line must retire");
        assert!(transients > 0, "drift failures must also fire");
        assert_eq!(e.wear_stats().unwrap().retirements, retired);
        let incidents = e.take_incidents();
        assert!(incidents.iter().any(|i| i.class == FaultClass::WearOut));
    }

    #[test]
    fn root_register_holds_the_last_persisted_root() {
        let mut e: PersistEngine<u32, u32> = PersistEngine::new(4, 4);
        assert_eq!(e.persisted_root(), None);
        e.persist_root([1u8; 16]);
        e.persist_root([2u8; 16]);
        assert_eq!(e.persisted_root(), Some([2u8; 16]));
        // The register is in the persistence domain: a crash keeps it.
        let _ = e.crash();
        assert_eq!(e.persisted_root(), Some([2u8; 16]));
    }

    #[test]
    fn read_replay_is_inert_without_a_plan() {
        let mut e: PersistEngine<u32, u32> = PersistEngine::new(4, 4);
        assert_eq!(e.read_replay(), None);
        e.confirm_read_replay(); // no plan: a no-op
        assert!(e.fault_stats().is_none());
    }

    #[test]
    fn poisoned_engine_rejects_every_attempt() {
        let mut e: PersistEngine<u32, u32> = PersistEngine::new(4, 4);
        e.begin_attempt().unwrap();
        e.poison(FaultClass::TransientRead);
        assert_eq!(e.poisoned(), Some(FaultClass::TransientRead));
        assert_eq!(
            e.begin_attempt(),
            Err(OramError::Poisoned {
                class: FaultClass::TransientRead
            })
        );
        // Poison dominates even the crashed state.
        let _ = e.crash();
        assert!(matches!(e.begin_attempt(), Err(OramError::Poisoned { .. })));
    }

    #[test]
    fn failed_recovery_is_counted() {
        let mut e: PersistEngine<u32, u32> = PersistEngine::new(2, 2);
        let _ = e.crash();
        let report = e.finish_recovery(RecoveryReport::from_check(Err("lost a3".into()), 1));
        assert!(!report.consistent);
        assert_eq!(e.stats().recovery_failures, 1);
        assert_eq!(e.last_recovery(), Some(&report));
    }
}
