//! Written-vs-committed value ledgers shared by the controllers'
//! recoverability oracles.

use std::collections::HashMap;

use crate::types::{BlockAddr, Leaf};

/// Tracks, per logical address, the last program-*written* value and the
/// last durably *committed* value.
///
/// Committed entries are keyed by the block's monotonic freshness counter
/// (`BlockHeader::seq`): WPQ rounds can commit copies out of order (a
/// backup from an earlier round after the primary from a later one), so
/// an update only lands if it is at least as fresh as what the ledger
/// already holds.
#[derive(Debug, Default)]
pub struct CommitLedger {
    /// Last value written by the program, per address.
    written: HashMap<u64, Vec<u8>>,
    /// Last durably committed value, keyed by freshness counter.
    committed: HashMap<u64, (u64, Vec<u8>)>,
}

impl CommitLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the program-visible write of `value` to `addr`.
    pub fn note_written(&mut self, addr: u64, value: Vec<u8>) {
        self.written.insert(addr, value);
    }

    /// Records that a copy of `addr` with freshness `seq` committed
    /// durably, unless a strictly fresher commit is already recorded.
    /// Returns `true` if the entry landed.
    pub fn commit_if_fresh(&mut self, addr: u64, seq: u64, payload: Vec<u8>) -> bool {
        let stale = self.committed.get(&addr).is_some_and(|(s, _)| *s > seq);
        if !stale {
            self.committed.insert(addr, (seq, payload));
        }
        !stale
    }

    /// The last durably committed value of `addr`, if any.
    pub fn committed_value(&self, addr: u64) -> Option<&Vec<u8>> {
        self.committed.get(&addr).map(|(_, v)| v)
    }

    /// The last program-written value of `addr`, if any.
    pub fn written_value(&self, addr: u64) -> Option<&Vec<u8>> {
        self.written.get(&addr)
    }

    /// Number of addresses with a committed value.
    pub fn committed_len(&self) -> usize {
        self.committed.len()
    }

    /// Iterates over `(addr, committed_value)` pairs.
    pub fn committed_iter(&self) -> impl Iterator<Item = (u64, &Vec<u8>)> {
        self.committed.iter().map(|(&a, (_, v))| (a, v))
    }

    /// `(addr, committed_value)` pairs in ascending address order. The
    /// audits walk this instead of the raw map so that, with several
    /// simultaneous inconsistencies (a device-fault situation), the
    /// *reported* one is deterministic.
    fn committed_sorted(&self) -> Vec<(u64, &Vec<u8>)> {
        let mut v: Vec<(u64, &Vec<u8>)> = self.committed_iter().collect();
        v.sort_unstable_by_key(|(a, _)| *a);
        v
    }

    /// The value a post-verification read-back must return for `addr`:
    /// the committed value after a crash, the written value otherwise,
    /// zeros (`payload_bytes` long) if the ledger holds nothing.
    pub fn expected_value(&self, addr: u64, after_crash: bool, payload_bytes: usize) -> Vec<u8> {
        let v = if after_crash {
            self.committed_value(addr)
        } else {
            self.written_value(addr)
        };
        v.cloned().unwrap_or_else(|| vec![0u8; payload_bytes])
    }

    /// The shared recoverability audit: every committed address must have
    /// a physical copy at its persisted PosMap position holding exactly
    /// the committed value.
    ///
    /// `copy_at` returns the persisted leaf of an address together with
    /// the newest matching copy's payload found there (protocol-specific
    /// scan). `durable_override` lets durable-stash designs satisfy an
    /// address out of the stash instead; non-durable designs pass
    /// `|_, _| false`. `desc` names the copy in violation messages
    /// (e.g. `"recoverable copy"`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency.
    pub fn audit_committed(
        &self,
        desc: &str,
        mut copy_at: impl FnMut(u64) -> (Leaf, Option<Vec<u8>>),
        mut durable_override: impl FnMut(u64, &Vec<u8>) -> bool,
    ) -> Result<(), String> {
        for (a, expected) in self.committed_sorted() {
            if durable_override(a, expected) {
                continue;
            }
            let addr = BlockAddr(a);
            let (leaf, found) = copy_at(a);
            match found {
                Some(p) if &p == expected => {}
                Some(p) => {
                    return Err(format!(
                        "{addr}: {desc} at {leaf} holds {p:?}, expected {expected:?}"
                    ));
                }
                None => return Err(format!("{addr}: no {desc} on persisted path {leaf}")),
            }
        }
        Ok(())
    }

    /// Like [`CommitLedger::audit_committed`], but collects *every*
    /// failing address instead of stopping at the first, so hardened
    /// recovery can repair or roll back all of them in one pass.
    pub fn audit_committed_collect(
        &self,
        desc: &str,
        mut copy_at: impl FnMut(u64) -> (Leaf, Option<Vec<u8>>),
        mut durable_override: impl FnMut(u64, &Vec<u8>) -> bool,
    ) -> Vec<(u64, String)> {
        let mut failures = Vec::new();
        for (a, expected) in self.committed_sorted() {
            if durable_override(a, expected) {
                continue;
            }
            let addr = BlockAddr(a);
            let (leaf, found) = copy_at(a);
            match found {
                Some(p) if &p == expected => {}
                Some(p) => failures.push((
                    a,
                    format!("{addr}: {desc} at {leaf} holds {p:?}, expected {expected:?}"),
                )),
                None => failures.push((a, format!("{addr}: no {desc} on persisted path {leaf}"))),
            }
        }
        failures.sort_by_key(|(a, _)| *a);
        failures
    }

    /// Rolls the committed record of `addr` back to `survivor` — the
    /// newest copy recovery could still authenticate — or forgets the
    /// address entirely when no copy survived. Detected, typed data
    /// regression; never called outside device-fault recovery.
    pub fn rollback(&mut self, addr: u64, survivor: Option<(u64, Vec<u8>)>) {
        match survivor {
            Some((seq, payload)) => {
                self.committed.insert(addr, (seq, payload));
            }
            None => {
                self.committed.remove(&addr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_commits_cannot_regress_the_ledger() {
        let mut l = CommitLedger::new();
        assert!(l.commit_if_fresh(7, 5, vec![5]));
        assert!(
            !l.commit_if_fresh(7, 3, vec![3]),
            "older seq must be rejected"
        );
        assert_eq!(l.committed_value(7), Some(&vec![5]));
        // Equal freshness re-commits (idempotent replay of the same copy).
        assert!(l.commit_if_fresh(7, 5, vec![5]));
        assert!(l.commit_if_fresh(7, 9, vec![9]));
        assert_eq!(l.committed_value(7), Some(&vec![9]));
        assert_eq!(l.committed_len(), 1);
    }

    #[test]
    fn audit_collect_reports_every_failure_sorted() {
        let mut l = CommitLedger::new();
        l.commit_if_fresh(5, 0, vec![5]);
        l.commit_if_fresh(2, 0, vec![2]);
        l.commit_if_fresh(9, 0, vec![9]);
        let failures = l.audit_committed_collect(
            "copy",
            |a| (Leaf(0), if a == 2 { Some(vec![2]) } else { None }),
            |_, _| false,
        );
        assert_eq!(
            failures.iter().map(|(a, _)| *a).collect::<Vec<_>>(),
            vec![5, 9]
        );
    }

    #[test]
    fn rollback_regresses_or_forgets() {
        let mut l = CommitLedger::new();
        l.commit_if_fresh(1, 8, vec![8]);
        l.rollback(1, Some((3, vec![3])));
        assert_eq!(l.committed_value(1), Some(&vec![3]));
        l.rollback(1, None);
        assert_eq!(l.committed_value(1), None);
    }

    #[test]
    fn written_and_committed_are_independent() {
        let mut l = CommitLedger::new();
        l.note_written(1, vec![1]);
        assert_eq!(l.written_value(1), Some(&vec![1]));
        assert_eq!(l.committed_value(1), None);
        assert_eq!(l.committed_iter().count(), 0);
    }
}
