//! The shared persist-round engine beneath the ORAM controllers.
//!
//! The paper's central mechanism — atomic persist rounds of *start signal
//! → persist units through the WPQ → end signal*, plus crash arming and
//! the crash/recover state machine — is protocol-agnostic: Path ORAM and
//! Ring ORAM differ in *what* they persist (slot writes vs whole-bucket
//! rewrites) and *when* (every access vs every `A` accesses), but not in
//! *how* a round commits or what a crash discards. This module owns that
//! shared machinery exactly once:
//!
//! * [`PersistEngine`] — the WPQ persist-round protocol over a
//!   [`psoram_nvm::PersistenceDomain`], crash arming & scheduling
//!   (`inject_crash`/`schedule_crash`/`access_attempts`), the
//!   crashed-state latch, and the engine-owned crash/recovery/stall
//!   counters ([`EngineStats`]).
//! * [`CommitLedger`] — the written-vs-durably-committed value ledgers
//!   with the freshness-counter staleness guard, shared by every
//!   controller's recoverability oracle.
//! * [`ProtocolPolicy`] — the object-safe trait the controllers implement;
//!   everything above the controllers (fault harness, system model,
//!   benches) drives designs through this one surface, and
//!   [`CommitModel`] tells the differential oracle when a design's
//!   completed writes become durable.
//!
//! A new ORAM protocol variant implements `ProtocolPolicy` (path
//! selection, eviction, commit model) and reuses the engine for the
//! entire crash-consistency protocol — instead of forking a 1,400-line
//! controller.

mod ledger;
mod persist;
mod policy;
mod scratch;

pub use ledger::CommitLedger;
pub(crate) use persist::fault_kind;
pub use persist::{EngineStats, PersistEngine, RoundDamage, WearReadOutcome};
pub use policy::{CommitModel, ProtocolPolicy, ProtocolVariant, RingVariant};
pub(crate) use scratch::AccessScratch;

use psoram_nvm::CORE_CYCLES_PER_MEM_CYCLE;

/// Converts a core-cycle timestamp to memory-controller cycles (floor).
pub(crate) fn to_mem(core: u64) -> u64 {
    core / CORE_CYCLES_PER_MEM_CYCLE
}

/// Converts a memory-controller cycle back to core cycles.
pub(crate) fn to_core(mem: u64) -> u64 {
    mem * CORE_CYCLES_PER_MEM_CYCLE
}

/// Expands to the crash-control surface every controller exposes: thin
/// public wrappers over its embedded [`PersistEngine`] (a `self.engine`
/// field) plus the private `maybe_crash` step guard, which turns a fired
/// crash plan into volatile-state loss via the controller's own
/// `execute_crash`. Defined once so the surface cannot drift between
/// controllers — a new protocol variant gets the identical crash API by
/// invoking this macro inside its `impl` block.
macro_rules! impl_crash_controls {
    () => {
        /// Arms a crash to fire at `point` during the next access.
        pub fn inject_crash(&mut self, point: crate::CrashPoint) {
            self.engine.inject_crash(point);
        }

        /// Disarms a pending crash plan that has not fired (e.g. a
        /// `DuringEviction` index beyond the access's batch count).
        pub fn disarm_crash(&mut self) {
            self.engine.disarm_crash();
        }

        /// Schedules a crash to fire at `point` during access attempt
        /// `access_index` (0-based, counting every access entry — including
        /// attempts that themselves crashed; see `access_attempts`).
        ///
        /// Unlike `inject_crash`, which arms only the very next access, a
        /// schedule can hold many future crashes at once; entries must be
        /// added in ascending index order and are consumed as the attempt
        /// counter reaches them. An index already in the past is silently
        /// never reached — use `clear_crash_schedule` to drop stale
        /// entries.
        pub fn schedule_crash(&mut self, access_index: u64, point: crate::CrashPoint) {
            self.engine.schedule_crash(access_index, point);
        }

        /// Drops all scheduled crashes that have not fired.
        pub fn clear_crash_schedule(&mut self) {
            self.engine.clear_crash_schedule();
        }

        /// Total access attempts so far (including attempts that crashed
        /// mid-way); the index the next attempt will carry for
        /// `schedule_crash`.
        pub fn access_attempts(&self) -> u64 {
            self.engine.access_attempts()
        }

        /// `true` while the controller is in a crashed state.
        pub fn is_crashed(&self) -> bool {
            self.engine.is_crashed()
        }

        /// Fires the armed crash plan if it matches `point`: loses volatile
        /// state via `execute_crash` and reports `OramError::Crashed`.
        fn maybe_crash(&mut self, point: crate::CrashPoint) -> Result<(), crate::OramError> {
            if self.engine.take_crash(point) {
                self.execute_crash();
                return Err(crate::OramError::Crashed);
            }
            Ok(())
        }
    };
}
pub(crate) use impl_crash_controls;
