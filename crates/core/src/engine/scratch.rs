//! Reusable per-access buffers for the controllers' hot paths.
//!
//! Every ORAM access reads and rewrites a full path — dozens of NVM slot
//! addresses and fetched blocks. Allocating those vectors afresh each access
//! put the allocator on the hottest loop of the simulator; instead each
//! controller owns one [`AccessScratch`] and takes/returns the buffers with
//! `std::mem::take`, so the steady state allocates nothing (the vectors
//! keep their high-water capacity). A buffer left empty by an early crash
//! return simply re-grows on the next access.

use crate::block::Block;
use crate::types::BlockAddr;

/// Scratch buffers reused across accesses by [`crate::PathOram`] and
/// [`crate::RingOram`].
///
/// Holding them in a separate struct (rather than as individual controller
/// fields) keeps the take/put-back discipline greppable and lets both
/// controllers share the same shape.
#[derive(Debug, Default)]
pub(crate) struct AccessScratch {
    /// NVM slot addresses of the current path read.
    pub read_addrs: Vec<u64>,
    /// NVM slot addresses of the eviction write-back.
    pub write_addrs: Vec<u64>,
    /// NVM addresses of flushed PosMap entries.
    pub entry_addrs: Vec<u64>,
    /// Blocks gathered off the fetched path (Path ORAM step ③).
    pub fetched: Vec<Block>,
    /// Addresses whose committed value must be re-derived after a WPQ round.
    pub touched_addrs: Vec<BlockAddr>,
}
