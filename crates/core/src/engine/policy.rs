//! The policy layer: protocol-variant metadata and the uniform
//! [`ProtocolPolicy`] trait the controllers implement.
//!
//! A *policy* is everything that names and characterizes a design —
//! which paper variant it is, whether it claims crash consistency, when
//! its completed writes become durable — plus the object-safe operation
//! surface the fault harness, system model, and benches drive it
//! through. The mechanics of persist rounds and crash scheduling live
//! one layer down in [`PersistEngine`](crate::engine::PersistEngine).

use serde::{Deserialize, Serialize};

use psoram_nvm::MemTech;

use crate::controller::PathOram;
use crate::crash::{CrashPoint, RecoveryReport};
use crate::ring::RingOram;
use crate::types::{BlockAddr, OramError};

/// The persistent-ORAM protocol variants evaluated in the paper (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolVariant {
    /// Path ORAM on NVM without any crash-consistency support.
    Baseline,
    /// On-chip stash and PosMap built from PCM cells; persistent but not
    /// atomic.
    FullNvm,
    /// `FullNVM` with STT-RAM on-chip buffers.
    FullNvmStt,
    /// PS-ORAM persisting *all* `Z·(L+1)` PosMap entries per access.
    NaivePsOram,
    /// The paper's contribution: backup blocks + dirty-entry-only flushes
    /// through atomic WPQ rounds.
    PsOram,
    /// Recursive Path ORAM (PosMap in untrusted NVM) without stash
    /// persistence.
    RcrBaseline,
    /// Recursive PS-ORAM: recursive PosMap plus PS-ORAM data persistence.
    RcrPsOram,
}

impl ProtocolVariant {
    /// All seven variants, in the paper's presentation order.
    pub fn all() -> [ProtocolVariant; 7] {
        [
            ProtocolVariant::Baseline,
            ProtocolVariant::FullNvm,
            ProtocolVariant::FullNvmStt,
            ProtocolVariant::NaivePsOram,
            ProtocolVariant::PsOram,
            ProtocolVariant::RcrBaseline,
            ProtocolVariant::RcrPsOram,
        ]
    }

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolVariant::Baseline => "Baseline",
            ProtocolVariant::FullNvm => "FullNVM",
            ProtocolVariant::FullNvmStt => "FullNVM(STT)",
            ProtocolVariant::NaivePsOram => "Naive-PS-ORAM",
            ProtocolVariant::PsOram => "PS-ORAM",
            ProtocolVariant::RcrBaseline => "Rcr-Baseline",
            ProtocolVariant::RcrPsOram => "Rcr-PS-ORAM",
        }
    }

    /// `true` for the recursive-PosMap variants.
    pub fn is_recursive(self) -> bool {
        matches!(
            self,
            ProtocolVariant::RcrBaseline | ProtocolVariant::RcrPsOram
        )
    }

    /// `true` for variants that evict through the WPQ persistence domain
    /// (and therefore use the temporary PosMap and backup blocks).
    pub fn uses_wpq(self) -> bool {
        matches!(
            self,
            ProtocolVariant::NaivePsOram | ProtocolVariant::PsOram | ProtocolVariant::RcrPsOram
        )
    }

    /// On-chip buffer technology for the stash/PosMap, if not SRAM.
    pub fn onchip_tech(self) -> Option<MemTech> {
        match self {
            ProtocolVariant::FullNvm => Some(MemTech::Pcm),
            ProtocolVariant::FullNvmStt => Some(MemTech::SttRam),
            _ => None,
        }
    }

    /// `true` when the stash itself survives a power failure.
    pub fn stash_durable(self) -> bool {
        self.onchip_tech().is_some()
    }

    /// Whether the design is expected to recover consistently from a crash
    /// at *any* point (the paper's claim for the PS-ORAM family).
    pub fn is_crash_consistent(self) -> bool {
        self.uses_wpq()
    }
}

impl std::fmt::Display for ProtocolVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Persistence flavour of the Ring ORAM controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RingVariant {
    /// Volatile stash/PosMap; bucket rewrites hit the NVM directly.
    Baseline,
    /// PS-style crash consistency: temporary PosMap plus atomic WPQ rounds
    /// for every bucket rewrite.
    PsRing,
}

impl std::fmt::Display for RingVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingVariant::Baseline => write!(f, "Ring-Baseline"),
            RingVariant::PsRing => write!(f, "PS-Ring-ORAM"),
        }
    }
}

/// When a design's completed writes become durable.
///
/// Drives the differential oracle's admissible-value set after a crash:
/// an `OnCompletion` design must preserve every completed write, while a
/// `Deferred` design may roll an address back to an earlier completed
/// write (but never to a value outside its history).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitModel {
    /// Every completed access is durable before it returns (Path ORAM).
    OnCompletion,
    /// Writes persist lazily at eviction boundaries (Ring ORAM).
    Deferred,
}

/// The uniform surface of an ORAM protocol variant over the shared
/// persist engine.
///
/// Everything above the controllers — the fault-injection harness, the
/// system model, the benches, and the parameterized crash tests — drives
/// designs through this one object-safe trait, so a new protocol variant
/// joins every sweep, campaign, and test by implementing it.
pub trait ProtocolPolicy {
    /// Human-readable design name (used in reports).
    fn label(&self) -> String;
    /// Addressable logical blocks.
    fn capacity_blocks(&self) -> u64;
    /// Functional payload size in bytes.
    fn payload_bytes(&self) -> usize;
    /// Whether the design claims crash consistency (the oracle's
    /// expectation: `true` means any violation is a bug).
    fn crash_consistent(&self) -> bool;
    /// When this design's completed writes become durable.
    fn commit_model(&self) -> CommitModel;
    /// Writes `data` to logical block `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the controller's [`OramError`] (notably
    /// [`OramError::Crashed`] when an armed crash fires).
    fn write(&mut self, addr: u64, data: Vec<u8>) -> Result<(), OramError>;
    /// Reads logical block `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the controller's [`OramError`].
    fn read(&mut self, addr: u64) -> Result<Vec<u8>, OramError>;
    /// Arms a crash plan; it fires when the access reaches `point`.
    fn inject_crash(&mut self, point: CrashPoint);
    /// Drops any armed crash plan.
    fn disarm_crash(&mut self);
    /// Schedules a crash to arm when access attempt `access_index` begins.
    fn schedule_crash(&mut self, access_index: u64, point: CrashPoint);
    /// Drops all scheduled crashes that have not fired.
    fn clear_crash_schedule(&mut self);
    /// Access attempts made so far (including ones that crashed).
    fn access_attempts(&self) -> u64;
    /// `true` between a crash and the matching [`ProtocolPolicy::recover`].
    fn is_crashed(&self) -> bool;
    /// Immediately executes a power failure.
    fn crash_now(&mut self);
    /// Runs the design's recovery procedure and consistency check.
    fn recover(&mut self) -> RecoveryReport;
    /// The report of the most recent recovery, if any.
    fn last_recovery(&self) -> Option<&RecoveryReport>;
    /// Reads back every touched address and compares it with the
    /// appropriate ledger (committed after a crash, written otherwise).
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    fn verify_contents(&mut self, after_crash: bool) -> Result<(), String>;
    /// The controller's core-cycle clock.
    fn clock(&self) -> u64;
    /// NVM traffic counters (reads/writes reaching the memory).
    fn nvm_stats(&self) -> psoram_nvm::NvmStats;
    /// Attaches an observability recorder behind a fresh shared tap.
    ///
    /// The default implementation ignores the recorder, so policies that
    /// do not model tracing stay valid.
    fn attach_recorder(&mut self, recorder: std::sync::Arc<dyn psoram_obsv::Recorder>) {
        let _ = recorder;
    }
    /// Publishes the design's counters into a metrics registry under
    /// `prefix`. The default implementation publishes nothing.
    fn publish_metrics(&self, prefix: &str, reg: &mut psoram_obsv::MetricsRegistry) {
        let _ = (prefix, reg);
    }
    /// Makes the design's NVM backend adversarial with a seeded device
    /// fault plan (and arms integrity hardening where the design supports
    /// it). The default implementation ignores the plan, so policies
    /// without a device model stay valid.
    fn enable_device_faults(&mut self, seed: u64, cfg: psoram_nvm::FaultConfig) {
        let _ = (seed, cfg);
    }
    /// Ground-truth injection counters of the installed fault plan, if
    /// any. `None` when no plan is installed (or supported).
    fn device_fault_stats(&self) -> Option<psoram_nvm::FaultStats> {
        None
    }
    /// The latched fail-safe class, if the design poisoned itself on
    /// unrepairable damage.
    fn poisoned(&self) -> Option<psoram_nvm::FaultClass> {
        None
    }
    /// A deterministic digest over the design's recoverable state, for
    /// idempotency regression checks. `0` when the design does not model
    /// one.
    fn state_digest(&self) -> u128 {
        0
    }
    /// Freshness counters (stale serves observed vs detected, fetch-path
    /// poisons). The default implementation reports zeroes, so policies
    /// without a device model stay valid.
    fn freshness_stats(&self) -> crate::auth::FreshnessStats {
        crate::auth::FreshnessStats::default()
    }
    /// Arms the endurance adversary: per-line wear accounting plus the
    /// chosen wear-leveling scheme, with mapping changes committed in the
    /// persistence domain's commit round. The default implementation
    /// ignores the request, so policies without a device model stay valid.
    fn enable_wear(&mut self, seed: u64, cfg: psoram_nvm::WearConfig) {
        let _ = (seed, cfg);
    }
    /// Wear/leveling counters of the armed endurance adversary, if any.
    /// `None` when wear is not enabled (or supported).
    fn wear_stats(&self) -> Option<psoram_nvm::WearStats> {
        None
    }
    /// Physical-line wear profile of the armed endurance adversary:
    /// `(max_line_writes, lines_touched)`. The lifetime campaigns divide
    /// the hottest line's write count by access count to project
    /// years-to-failure per leveling scheme. `None` when wear is not
    /// enabled (or supported).
    fn wear_line_profile(&self) -> Option<(u64, u64)> {
        None
    }
    /// Spare lines the retirement layer still holds. `None` when wear is
    /// not enabled (or supported).
    fn wear_spares_left(&self) -> Option<u64> {
        None
    }
}

impl ProtocolPolicy for PathOram {
    fn label(&self) -> String {
        format!("path/{}", self.variant().label())
    }
    fn capacity_blocks(&self) -> u64 {
        self.config().capacity_blocks()
    }
    fn payload_bytes(&self) -> usize {
        self.config().payload_bytes
    }
    fn crash_consistent(&self) -> bool {
        self.variant().is_crash_consistent()
    }
    fn commit_model(&self) -> CommitModel {
        match self.variant() {
            // Stash and PosMap live in on-chip NVM: a completed access is
            // durable before it returns.
            ProtocolVariant::FullNvm | ProtocolVariant::FullNvmStt => CommitModel::OnCompletion,
            // Persists the stash's dirty blocks to the reserved NVM
            // region every access, so completed writes never depend on
            // winning a slot in the eviction plan.
            ProtocolVariant::RcrPsOram => CommitModel::OnCompletion,
            // The WPQ makes each *eviction round* atomic, but a written
            // block that loses the greedy placement race (root bucket
            // full) stays in the volatile stash as an eviction leftover
            // until a later access evicts it — a crash in that window
            // rolls the address back to its previous completed write.
            ProtocolVariant::NaivePsOram | ProtocolVariant::PsOram => CommitModel::Deferred,
            // Baselines are judged by the strict model on purpose: they
            // claim nothing, and the oracle's violations on them are the
            // harness's differential teeth.
            ProtocolVariant::Baseline | ProtocolVariant::RcrBaseline => CommitModel::OnCompletion,
        }
    }
    fn write(&mut self, addr: u64, data: Vec<u8>) -> Result<(), OramError> {
        PathOram::write(self, BlockAddr(addr), data)
    }
    fn read(&mut self, addr: u64) -> Result<Vec<u8>, OramError> {
        PathOram::read(self, BlockAddr(addr))
    }
    fn inject_crash(&mut self, point: CrashPoint) {
        PathOram::inject_crash(self, point);
    }
    fn disarm_crash(&mut self) {
        PathOram::disarm_crash(self);
    }
    fn schedule_crash(&mut self, access_index: u64, point: CrashPoint) {
        PathOram::schedule_crash(self, access_index, point);
    }
    fn clear_crash_schedule(&mut self) {
        PathOram::clear_crash_schedule(self);
    }
    fn access_attempts(&self) -> u64 {
        PathOram::access_attempts(self)
    }
    fn is_crashed(&self) -> bool {
        PathOram::is_crashed(self)
    }
    fn crash_now(&mut self) {
        let _ = PathOram::crash_now(self);
    }
    fn recover(&mut self) -> RecoveryReport {
        PathOram::recover(self)
    }
    fn last_recovery(&self) -> Option<&RecoveryReport> {
        PathOram::last_recovery(self)
    }
    fn verify_contents(&mut self, after_crash: bool) -> Result<(), String> {
        PathOram::verify_contents(self, after_crash)
    }
    fn clock(&self) -> u64 {
        PathOram::clock(self)
    }
    fn nvm_stats(&self) -> psoram_nvm::NvmStats {
        PathOram::nvm_stats(self)
    }
    fn attach_recorder(&mut self, recorder: std::sync::Arc<dyn psoram_obsv::Recorder>) {
        PathOram::attach_obsv_recorder(self, recorder);
    }
    fn publish_metrics(&self, prefix: &str, reg: &mut psoram_obsv::MetricsRegistry) {
        use psoram_obsv::{MetricsRegistry as R, MetricsSource};
        self.stats().publish(&R::key(prefix, "oram"), reg);
        self.nvm_stats().publish(&R::key(prefix, "nvm"), reg);
        let (data, posmap) = self.wpq_stats();
        data.publish(&R::key(prefix, "wpq.data"), reg);
        posmap.publish(&R::key(prefix, "wpq.posmap"), reg);
        if let Some(w) = self.wear_engine() {
            w.publish(&R::key(prefix, "wear"), reg);
            self.nvm()
                .wear_report(8)
                .publish(&R::key(prefix, "nvm.wear"), reg);
        }
    }
    fn enable_device_faults(&mut self, seed: u64, cfg: psoram_nvm::FaultConfig) {
        PathOram::enable_device_faults(self, seed, cfg);
    }
    fn enable_wear(&mut self, seed: u64, cfg: psoram_nvm::WearConfig) {
        PathOram::enable_wear(self, seed, cfg);
    }
    fn wear_stats(&self) -> Option<psoram_nvm::WearStats> {
        PathOram::wear_stats(self)
    }
    fn wear_line_profile(&self) -> Option<(u64, u64)> {
        self.wear_engine()
            .map(|w| (w.max_line_writes(), w.lines_touched()))
    }
    fn wear_spares_left(&self) -> Option<u64> {
        self.wear_engine().map(|w| w.spares_left())
    }
    fn device_fault_stats(&self) -> Option<psoram_nvm::FaultStats> {
        PathOram::device_fault_stats(self)
    }
    fn poisoned(&self) -> Option<psoram_nvm::FaultClass> {
        PathOram::poisoned(self)
    }
    fn state_digest(&self) -> u128 {
        PathOram::state_digest(self)
    }
    fn freshness_stats(&self) -> crate::auth::FreshnessStats {
        PathOram::freshness_stats(self)
    }
}

impl ProtocolPolicy for RingOram {
    fn label(&self) -> String {
        format!("ring/{}", self.variant())
    }
    fn capacity_blocks(&self) -> u64 {
        self.config().capacity_blocks()
    }
    fn payload_bytes(&self) -> usize {
        self.config().payload_bytes
    }
    fn crash_consistent(&self) -> bool {
        self.variant() == RingVariant::PsRing
    }
    fn commit_model(&self) -> CommitModel {
        // Ring ORAM only writes buckets back every `A` accesses: a
        // completed write may sit volatile until the next evict-path.
        CommitModel::Deferred
    }
    fn write(&mut self, addr: u64, data: Vec<u8>) -> Result<(), OramError> {
        RingOram::write(self, BlockAddr(addr), data)
    }
    fn read(&mut self, addr: u64) -> Result<Vec<u8>, OramError> {
        RingOram::read(self, BlockAddr(addr))
    }
    fn inject_crash(&mut self, point: CrashPoint) {
        RingOram::inject_crash(self, point);
    }
    fn disarm_crash(&mut self) {
        RingOram::disarm_crash(self);
    }
    fn schedule_crash(&mut self, access_index: u64, point: CrashPoint) {
        RingOram::schedule_crash(self, access_index, point);
    }
    fn clear_crash_schedule(&mut self) {
        RingOram::clear_crash_schedule(self);
    }
    fn access_attempts(&self) -> u64 {
        RingOram::access_attempts(self)
    }
    fn is_crashed(&self) -> bool {
        RingOram::is_crashed(self)
    }
    fn crash_now(&mut self) {
        RingOram::crash_now(self);
    }
    fn recover(&mut self) -> RecoveryReport {
        RingOram::recover(self)
    }
    fn last_recovery(&self) -> Option<&RecoveryReport> {
        RingOram::last_recovery(self)
    }
    fn verify_contents(&mut self, after_crash: bool) -> Result<(), String> {
        RingOram::verify_contents(self, after_crash)
    }
    fn clock(&self) -> u64 {
        RingOram::clock(self)
    }
    fn nvm_stats(&self) -> psoram_nvm::NvmStats {
        RingOram::nvm_stats(self)
    }
    fn attach_recorder(&mut self, recorder: std::sync::Arc<dyn psoram_obsv::Recorder>) {
        RingOram::attach_obsv_recorder(self, recorder);
    }
    fn publish_metrics(&self, prefix: &str, reg: &mut psoram_obsv::MetricsRegistry) {
        use psoram_obsv::{MetricsRegistry as R, MetricsSource};
        self.stats().publish(&R::key(prefix, "oram"), reg);
        self.nvm_stats().publish(&R::key(prefix, "nvm"), reg);
        let (data, posmap) = self.wpq_stats();
        data.publish(&R::key(prefix, "wpq.data"), reg);
        posmap.publish(&R::key(prefix, "wpq.posmap"), reg);
        if let Some(w) = self.wear_engine() {
            w.publish(&R::key(prefix, "wear"), reg);
            self.nvm()
                .wear_report(8)
                .publish(&R::key(prefix, "nvm.wear"), reg);
        }
    }
    fn enable_device_faults(&mut self, seed: u64, cfg: psoram_nvm::FaultConfig) {
        RingOram::enable_device_faults(self, seed, cfg);
    }
    fn enable_wear(&mut self, seed: u64, cfg: psoram_nvm::WearConfig) {
        RingOram::enable_wear(self, seed, cfg);
    }
    fn wear_stats(&self) -> Option<psoram_nvm::WearStats> {
        RingOram::wear_stats(self)
    }
    fn wear_line_profile(&self) -> Option<(u64, u64)> {
        self.wear_engine()
            .map(|w| (w.max_line_writes(), w.lines_touched()))
    }
    fn wear_spares_left(&self) -> Option<u64> {
        self.wear_engine().map(|w| w.spares_left())
    }
    fn device_fault_stats(&self) -> Option<psoram_nvm::FaultStats> {
        RingOram::device_fault_stats(self)
    }
    fn poisoned(&self) -> Option<psoram_nvm::FaultClass> {
        RingOram::poisoned(self)
    }
    fn state_digest(&self) -> u128 {
        RingOram::state_digest(self)
    }
    fn freshness_stats(&self) -> crate::auth::FreshnessStats {
        RingOram::freshness_stats(self)
    }
}
