//! Eviction planning: greedy path placement and dependency-ordered
//! write-back for small persistence domains.

use std::collections::HashMap;

use crate::block::Block;
use crate::tree::{BucketIndex, OramTree};
use crate::types::{BlockAddr, Leaf};

/// One slot write of an eviction round (`None` writes a dummy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotWrite {
    /// Destination bucket.
    pub bucket: BucketIndex,
    /// Destination slot within the bucket.
    pub slot: usize,
    /// The block to write, or `None` for an encrypted dummy.
    pub block: Option<Block>,
}

/// The outcome of planning one eviction on a path.
#[derive(Debug, Clone, Default)]
pub struct EvictionPlan {
    /// Every slot of the path, in root-to-leaf order — the full-path
    /// rewrite the memory system performs.
    pub writes: Vec<SlotWrite>,
    /// Addresses of *primary* (non-backup) blocks placed by this plan.
    pub evicted_primaries: Vec<BlockAddr>,
    /// Addresses of backup/live-shadow blocks placed by this plan.
    pub evicted_backups: Vec<BlockAddr>,
}

impl EvictionPlan {
    /// Number of real (non-dummy) blocks written.
    pub fn real_blocks(&self) -> usize {
        self.writes.iter().filter(|w| w.block.is_some()).count()
    }
}

/// Plans a Path ORAM eviction onto the path to `leaf`.
///
/// `must` contains blocks whose only live NVM copy resides on this path
/// (every block just fetched from it, including backup/shadow copies): the
/// full-path rewrite is about to destroy those copies, so crash consistency
/// requires all of them to be re-placed — and they always can be, because
/// each one occupied a distinct slot of this very path (its original
/// position is a witness placement). `opportunistic` blocks (longer-lived
/// stash residents, the freshly remapped target) fill the remaining slots
/// greedily; the ones that do not fit are returned for the stash.
///
/// Placement is greedy from the leaf toward the root, deepest-eligible
/// block first, with the `must` class placed before any opportunistic
/// block. Backups being in the `must` class is exactly the paper's
/// Claim 2: stash occupancy does not grow because of backups.
pub fn plan_eviction(
    must: Vec<Block>,
    opportunistic: Vec<Block>,
    tree: &OramTree,
    leaf: Leaf,
) -> (EvictionPlan, Vec<Block>) {
    let levels = tree.levels();
    let z = tree.bucket_slots();
    let path = tree.path_indices(leaf);

    let mut level_fill: Vec<Vec<Block>> = vec![Vec::new(); levels as usize + 1];
    let mut leftovers = Vec::new();
    for (class, candidates) in [(0usize, must), (1, opportunistic)] {
        // Deepest level each candidate may occupy.
        let mut items: Vec<(u32, Block)> = candidates
            .into_iter()
            .map(|b| (tree.common_depth(b.leaf(), leaf), b))
            .collect();
        items.sort_by_key(|(d, _)| *d);
        // Iterate from deepest-eligible to shallowest; place each in the
        // deepest level that still has room.
        for (max_depth, block) in items.into_iter().rev() {
            let mut placed = false;
            for d in (0..=max_depth as usize).rev() {
                if level_fill[d].len() < z {
                    level_fill[d].push(block.clone());
                    placed = true;
                    break;
                }
            }
            if !placed {
                debug_assert!(
                    class == 1,
                    "a must-place block could not be placed on its own path"
                );
                leftovers.push(block);
            }
        }
    }

    let mut plan = EvictionPlan::default();
    for (d, bucket) in path.iter().enumerate() {
        let blocks = std::mem::take(&mut level_fill[d]);
        for slot in 0..z {
            let block = blocks.get(slot).cloned();
            if let Some(b) = &block {
                if b.is_backup {
                    plan.evicted_backups.push(b.addr());
                } else {
                    plan.evicted_primaries.push(b.addr());
                }
            }
            plan.writes.push(SlotWrite {
                bucket: *bucket,
                slot,
                block,
            });
        }
    }
    (plan, leftovers)
}

/// Plans an eviction for **small persistence domains** (paper §4.2.3):
/// every `must` block is written back *at the very slot its live copy
/// occupies* (identity placement), so no write ever destroys another
/// block's only live copy and the write-back needs no ordering constraints
/// at all — arbitrary `capacity`-sized atomic batches are safe.
///
/// The paper proposes ordering the writes (`e → c → b`, Claim 5); ordering
/// alone cannot handle dependency *cycles* longer than the WPQ, which do
/// arise under greedy placement (found by our property tests). Identity
/// placement is the sound generalization: live copies never move within a
/// round, opportunistic blocks only fill slots whose old content is dummy
/// or dead, and slots holding superseded duplicates are rewritten as
/// dummies strictly after all real batches.
///
/// `live_slots` maps `(bucket, slot)` to the address whose live copy sits
/// there (as computed during the path read).
pub fn plan_eviction_in_place(
    must: Vec<Block>,
    opportunistic: Vec<Block>,
    tree: &OramTree,
    leaf: Leaf,
    live_slots: &HashMap<(BucketIndex, usize), BlockAddr>,
) -> (EvictionPlan, Vec<Block>) {
    let z = tree.bucket_slots();
    let path = tree.path_indices(leaf);

    // Assign must blocks to their own live slots.
    let mut assigned: HashMap<(BucketIndex, usize), Block> = HashMap::new();
    let mut homeless = Vec::new();
    for block in must {
        let slot = live_slots
            .iter()
            .find(|(k, &a)| a == block.addr() && !assigned.contains_key(*k))
            .map(|(k, _)| *k);
        match slot {
            Some(k) => {
                assigned.insert(k, block);
            }
            None => homeless.push(block),
        }
    }

    // Opportunistic blocks (plus any must block without a live slot, e.g. a
    // fresh write) fill non-live slots, deepest-eligible first.
    let mut leftovers = Vec::new();
    let mut items: Vec<(u32, Block)> = homeless
        .into_iter()
        .chain(opportunistic)
        .map(|b| (tree.common_depth(b.leaf(), leaf), b))
        .collect();
    items.sort_by_key(|(d, _)| *d);
    for (max_depth, block) in items.into_iter().rev() {
        let mut placed = false;
        'depth: for d in (0..=max_depth as usize).rev() {
            let bucket = path[d];
            for slot in 0..z {
                let key = (bucket, slot);
                if live_slots.contains_key(&key) || assigned.contains_key(&key) {
                    continue;
                }
                assigned.insert(key, block.clone());
                placed = true;
                break 'depth;
            }
        }
        if !placed {
            leftovers.push(block);
        }
    }

    let mut plan = EvictionPlan::default();
    for (d, bucket) in path.iter().enumerate() {
        let _ = d;
        for slot in 0..z {
            let block = assigned.remove(&(*bucket, slot));
            if let Some(b) = &block {
                if b.is_backup {
                    plan.evicted_backups.push(b.addr());
                } else {
                    plan.evicted_primaries.push(b.addr());
                }
            }
            plan.writes.push(SlotWrite {
                bucket: *bucket,
                slot,
                block,
            });
        }
    }
    (plan, leftovers)
}

/// Splits an eviction's real-block writes into dependency-ordered atomic
/// batches of at most `capacity` entries, for small persistence domains
/// (paper §4.2.3, Claim 5).
///
/// `live_old` maps `(bucket, slot)` to the address whose *live* (recoverable)
/// copy currently occupies that slot in NVM; `new_slot` maps each address
/// written this round to its destination. A write into a slot holding the
/// live copy of `x` may only be issued after `x`'s own new copy is durable,
/// or inside the same atomic batch. Dummy writes carry no payload and are
/// ordered last.
///
/// # Errors
///
/// Returns the cycle length when a dependency cycle exceeds `capacity` —
/// no safe ordering exists for that plan; the caller re-plans with
/// [`plan_eviction_in_place`], which has no ordering constraints.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn order_for_small_wpq(
    writes: &[SlotWrite],
    live_old: &HashMap<(BucketIndex, usize), BlockAddr>,
    capacity: usize,
) -> Result<Vec<Vec<SlotWrite>>, usize> {
    assert!(capacity > 0);
    // Destination of each address written this round.
    let new_slot: HashMap<BlockAddr, usize> = writes
        .iter()
        .enumerate()
        .filter_map(|(i, w)| w.block.as_ref().map(|b| (b.addr(), i)))
        .collect();

    let real: Vec<usize> = (0..writes.len())
        .filter(|&i| writes[i].block.is_some())
        .collect();
    // Edge u -> v means u must be durable no later than v's batch.
    let mut succs: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut preds: HashMap<usize, usize> = real.iter().map(|&i| (i, 0)).collect();
    for &v in &real {
        let w = &writes[v];
        if let Some(&victim) = live_old.get(&(w.bucket, w.slot)) {
            if let Some(&u) = new_slot.get(&victim) {
                if u != v {
                    succs.entry(u).or_default().push(v);
                    *preds.get_mut(&v).expect("v is real") += 1;
                }
            }
        }
    }

    // Kahn's algorithm, emitting capacity-sized batches; a stall means a
    // dependency cycle, which is emitted as one atomic batch.
    let mut remaining: Vec<usize> = real.clone();
    let mut batches = Vec::new();
    while !remaining.is_empty() {
        let ready: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|i| preds[i] == 0)
            .collect();
        let chosen: Vec<usize> = if ready.is_empty() {
            // Cycle: find one by walking dependencies; it must commit as a
            // single atomic batch, so it has to fit the WPQ.
            let cycle = find_cycle(&remaining, writes, live_old, &new_slot);
            if cycle.len() > capacity {
                return Err(cycle.len());
            }
            cycle
        } else {
            ready.into_iter().take(capacity).collect()
        };
        for &c in &chosen {
            for s in succs.get(&c).cloned().unwrap_or_default() {
                if let Some(p) = preds.get_mut(&s) {
                    *p = p.saturating_sub(1);
                }
            }
        }
        remaining.retain(|i| !chosen.contains(i));
        batches.push(chosen.iter().map(|&i| writes[i].clone()).collect());
    }

    // Dummy writes last, in capacity-sized batches.
    let dummies: Vec<SlotWrite> = writes
        .iter()
        .filter(|w| w.block.is_none())
        .cloned()
        .collect();
    for chunk in dummies.chunks(capacity) {
        batches.push(chunk.to_vec());
    }
    Ok(batches)
}

fn find_cycle(
    remaining: &[usize],
    writes: &[SlotWrite],
    live_old: &HashMap<(BucketIndex, usize), BlockAddr>,
    new_slot: &HashMap<BlockAddr, usize>,
) -> Vec<usize> {
    // Every remaining node has a predecessor; walk backwards until a repeat.
    let start = remaining[0];
    let mut seen = vec![start];
    let mut cur = start;
    loop {
        let w = &writes[cur];
        let pred = live_old
            .get(&(w.bucket, w.slot))
            .and_then(|victim| new_slot.get(victim))
            .copied()
            .expect("stalled node must have a predecessor");
        if let Some(pos) = seen.iter().position(|&s| s == pred) {
            return seen[pos..].to_vec();
        }
        seen.push(pred);
        cur = pred;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::OramConfig;

    fn tree() -> OramTree {
        OramTree::new(&OramConfig::small_test()) // L = 6, Z = 4
    }

    fn blk(a: u64, leaf: u64) -> Block {
        Block::new(BlockAddr(a), Leaf(leaf), vec![a as u8; 8])
    }

    #[test]
    fn plan_covers_every_path_slot() {
        let t = tree();
        let (plan, left) = plan_eviction(vec![], vec![blk(1, 5)], &t, Leaf(5));
        assert_eq!(
            plan.writes.len(),
            t.bucket_slots() * (t.levels() as usize + 1)
        );
        assert!(left.is_empty());
        assert_eq!(plan.real_blocks(), 1);
    }

    #[test]
    fn exact_leaf_match_goes_deepest() {
        let t = tree();
        let (plan, _) = plan_eviction(vec![], vec![blk(1, 5)], &t, Leaf(5));
        let leaf_bucket = t.bucket_at(Leaf(5), t.levels());
        let placed = plan
            .writes
            .iter()
            .find(|w| w.block.is_some())
            .expect("block placed");
        assert_eq!(placed.bucket, leaf_bucket);
    }

    #[test]
    fn root_only_block_goes_to_root() {
        let t = tree();
        // Leaf 0 vs eviction leaf 63: first bit differs, only root shared.
        let (plan, _) = plan_eviction(vec![], vec![blk(1, 0)], &t, Leaf(63));
        let placed = plan.writes.iter().find(|w| w.block.is_some()).unwrap();
        assert_eq!(placed.bucket, 0);
    }

    #[test]
    fn fetched_path_always_replaceable() {
        // Blocks that all came from the eviction path must all be placed.
        let t = tree();
        let leaf = Leaf(21);
        // One block per level, with leaves agreeing to exactly that depth.
        let mut cands = Vec::new();
        for d in 0..=6u64 {
            // A leaf agreeing with 21 on the top `d` bits, differing next.
            let leaf_d = if d == 6 {
                21
            } else {
                (21 ^ (1 << (5 - d))) & 63
            };
            cands.push(blk(d, leaf_d));
        }
        let (plan, left) = plan_eviction(cands, vec![], &t, leaf);
        assert!(
            left.is_empty(),
            "all path-resident blocks must be re-placed"
        );
        assert_eq!(plan.real_blocks(), 7);
    }

    #[test]
    fn overflow_goes_back_to_stash() {
        let t = tree();
        // 5 blocks that can only live in the root (Z = 4).
        let cands: Vec<Block> = (0..5).map(|a| blk(a, 0)).collect();
        let (plan, left) = plan_eviction(vec![], cands, &t, Leaf(63));
        assert_eq!(plan.real_blocks(), 4);
        assert_eq!(left.len(), 1);
    }

    #[test]
    fn backups_counted_separately() {
        let t = tree();
        let primary = blk(9, 5);
        let backup = primary.to_backup(Leaf(5));
        let (plan, _) = plan_eviction(vec![backup], vec![primary], &t, Leaf(5));
        assert_eq!(plan.evicted_primaries, vec![BlockAddr(9)]);
        assert_eq!(plan.evicted_backups, vec![BlockAddr(9)]);
    }

    #[test]
    fn ordering_respects_overwrite_dependencies() {
        let t = tree();
        let leaf = Leaf(5);
        let (plan, _) = plan_eviction(vec![], vec![blk(1, 5), blk(2, 5)], &t, leaf);
        // Pretend block 2's live copy sits where block 1 will be written.
        let w1 = plan
            .writes
            .iter()
            .find(|w| w.block.as_ref().is_some_and(|b| b.addr() == BlockAddr(1)))
            .unwrap();
        let mut live_old = HashMap::new();
        live_old.insert((w1.bucket, w1.slot), BlockAddr(2));
        let batches = order_for_small_wpq(&plan.writes, &live_old, 1).unwrap();
        // Block 2 must be written in an earlier batch than block 1.
        let pos = |a: u64| {
            batches
                .iter()
                .position(|b| {
                    b.iter()
                        .any(|w| w.block.as_ref().is_some_and(|bl| bl.addr() == BlockAddr(a)))
                })
                .unwrap()
        };
        assert!(pos(2) < pos(1), "dependency order violated");
    }

    #[test]
    fn swap_cycle_lands_in_one_atomic_batch() {
        let t = tree();
        let leaf = Leaf(5);
        let (plan, _) = plan_eviction(vec![], vec![blk(1, 5), blk(2, 5)], &t, leaf);
        let w1 = plan
            .writes
            .iter()
            .find(|w| w.block.as_ref().is_some_and(|b| b.addr() == BlockAddr(1)))
            .unwrap()
            .clone();
        let w2 = plan
            .writes
            .iter()
            .find(|w| w.block.as_ref().is_some_and(|b| b.addr() == BlockAddr(2)))
            .unwrap()
            .clone();
        let mut live_old = HashMap::new();
        live_old.insert((w1.bucket, w1.slot), BlockAddr(2));
        live_old.insert((w2.bucket, w2.slot), BlockAddr(1));
        let batches = order_for_small_wpq(&plan.writes, &live_old, 4).unwrap();
        let cycle_batch = batches
            .iter()
            .find(|b| b.iter().any(|w| w.block.is_some()))
            .unwrap();
        let reals: Vec<_> = cycle_batch.iter().filter(|w| w.block.is_some()).collect();
        assert_eq!(reals.len(), 2, "swap must commit atomically");
    }

    #[test]
    fn batches_respect_capacity_except_cycles() {
        let t = tree();
        let cands: Vec<Block> = (0..8).map(|a| blk(a, 5)).collect();
        let (plan, _) = plan_eviction(vec![], cands, &t, Leaf(5));
        let batches = order_for_small_wpq(&plan.writes, &HashMap::new(), 3).unwrap();
        for b in &batches {
            assert!(b.len() <= 3);
        }
        let total: usize = batches.iter().map(Vec::len).sum();
        assert_eq!(total, plan.writes.len());
    }

    #[test]
    fn in_place_puts_must_blocks_back_on_their_own_slots() {
        let t = tree();
        let leaf = Leaf(5);
        let b1 = blk(1, 5);
        let b2 = blk(2, 5);
        let mut live = HashMap::new();
        let s1 = (t.bucket_at(leaf, 6), 0usize);
        let s2 = (t.bucket_at(leaf, 3), 2usize);
        live.insert(s1, BlockAddr(1));
        live.insert(s2, BlockAddr(2));
        let (plan, left) = plan_eviction_in_place(vec![b1, b2], vec![], &t, leaf, &live);
        assert!(left.is_empty());
        for w in &plan.writes {
            if let Some(b) = &w.block {
                let key = (w.bucket, w.slot);
                assert_eq!(
                    live.get(&key),
                    Some(&b.addr()),
                    "block moved off its live slot"
                );
            }
        }
    }

    #[test]
    fn in_place_opportunistic_avoids_live_slots() {
        let t = tree();
        let leaf = Leaf(5);
        let mut live = HashMap::new();
        // A live copy of an address NOT among the candidates (superseded
        // duplicate): its slot must be left for a trailing dummy write.
        let reserved = (t.bucket_at(leaf, 6), 1usize);
        live.insert(reserved, BlockAddr(99));
        let (plan, _) = plan_eviction_in_place(vec![], vec![blk(1, 5)], &t, leaf, &live);
        let at_reserved = plan
            .writes
            .iter()
            .find(|w| (w.bucket, w.slot) == reserved)
            .unwrap();
        assert!(
            at_reserved.block.is_none(),
            "reserved live slot must become a dummy"
        );
        assert_eq!(plan.real_blocks(), 1);
    }

    #[test]
    fn in_place_has_no_ordering_dependencies() {
        let t = tree();
        let leaf = Leaf(5);
        let b1 = blk(1, 5);
        let b2 = blk(2, 5);
        let mut live = HashMap::new();
        live.insert((t.bucket_at(leaf, 6), 0usize), BlockAddr(1));
        live.insert((t.bucket_at(leaf, 6), 1usize), BlockAddr(2));
        let (plan, _) = plan_eviction_in_place(vec![b1, b2], vec![blk(3, 5)], &t, leaf, &live);
        // With identity placement the small-WPQ scheduler finds everything
        // ready immediately: batches never stall on a cycle.
        let batches = order_for_small_wpq(&plan.writes, &live, 1).unwrap();
        let reals: usize = batches
            .iter()
            .map(|b| b.iter().filter(|w| w.block.is_some()).count())
            .sum();
        assert_eq!(reals, 3);
        for b in &batches {
            assert!(b.len() <= 1);
        }
    }

    #[test]
    fn dummies_ordered_after_real_blocks() {
        let t = tree();
        let (plan, _) = plan_eviction(vec![], vec![blk(1, 5)], &t, Leaf(5));
        let batches = order_for_small_wpq(&plan.writes, &HashMap::new(), 4).unwrap();
        let first_dummy_batch = batches
            .iter()
            .position(|b| b.iter().any(|w| w.block.is_none()));
        let last_real_batch = batches
            .iter()
            .rposition(|b| b.iter().any(|w| w.block.is_some()))
            .unwrap();
        assert!(first_dummy_batch.unwrap() > last_real_batch);
    }
}
