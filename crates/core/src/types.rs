//! Fundamental ORAM types: addresses, leaves, configuration, errors.

use serde::{Deserialize, Serialize};

/// Logical address of a data block (a block index, not a byte address).
///
/// This is the address space the program sees; the ORAM controller
/// translates it into tree paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockAddr(pub u64);

impl std::fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// A path identifier (leaf label) in the ORAM tree.
///
/// Leaves are numbered `0..num_leaves` left to right.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Leaf(pub u64);

impl std::fmt::Display for Leaf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Kind of a program-level ORAM request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Read the block's current value.
    Read,
    /// Overwrite the block's value.
    Write,
}

/// Outcome of one ORAM access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The block's value (pre-existing for reads, the new value for writes).
    pub value: Vec<u8>,
    /// Core cycle at which the value is available to the processor.
    pub complete_cycle: u64,
    /// Core cycle at which the eviction write-back fully reaches the NVM.
    pub eviction_complete_cycle: u64,
}

/// Geometry and sizing of an ORAM instance.
///
/// Follows the paper's Table 3 defaults: a 4 GB ORAM tree (`L = 23`),
/// `Z = 4` slots per bucket, 64 B blocks, a 200-entry stash, a 96-entry
/// temporary PosMap and 96-entry WPQs, at 50% utilization.
///
/// # Examples
///
/// ```
/// use psoram_core::OramConfig;
///
/// let cfg = OramConfig::paper_default();
/// assert_eq!(cfg.levels, 23);
/// assert_eq!(cfg.bucket_slots, 4);
/// assert_eq!(cfg.path_slots(), 96);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OramConfig {
    /// Tree height `L`: the tree has `L + 1` levels and `2^L` leaves.
    pub levels: u32,
    /// Block slots per bucket (`Z`).
    pub bucket_slots: usize,
    /// Modeled block size in bytes (64 B cacheline in the paper).
    pub block_bytes: usize,
    /// Functional payload bytes actually stored per block (kept small so
    /// large trees stay in host memory; timing always charges
    /// [`OramConfig::block_bytes`]).
    pub payload_bytes: usize,
    /// Stash capacity in blocks (`C`).
    pub stash_capacity: usize,
    /// Temporary PosMap capacity in entries (`C_tPos`).
    pub temp_posmap_capacity: usize,
    /// Data-block WPQ capacity in entries.
    pub data_wpq_capacity: usize,
    /// PosMap WPQ capacity in entries.
    pub posmap_wpq_capacity: usize,
    /// Fraction of block slots holding real blocks (0.5 in the paper).
    pub utilization: f64,
}

impl OramConfig {
    /// The paper's Table 3 configuration (4 GB tree, `L = 23`, `Z = 4`).
    pub fn paper_default() -> Self {
        OramConfig {
            levels: 23,
            bucket_slots: 4,
            block_bytes: 64,
            payload_bytes: 8,
            stash_capacity: 200,
            temp_posmap_capacity: 96,
            data_wpq_capacity: 96,
            posmap_wpq_capacity: 96,
            utilization: 0.5,
        }
    }

    /// A small configuration for unit tests: `L = 6`, `Z = 4`.
    pub fn small_test() -> Self {
        OramConfig {
            levels: 6,
            bucket_slots: 4,
            block_bytes: 64,
            payload_bytes: 8,
            stash_capacity: 120,
            temp_posmap_capacity: 96,
            data_wpq_capacity: 28, // Z * (L+1) = 28
            posmap_wpq_capacity: 28,
            utilization: 0.5,
        }
    }

    /// A mid-size configuration for integration runs and experiments that
    /// must complete quickly (`L = 15`).
    pub fn medium() -> Self {
        OramConfig {
            levels: 15,
            bucket_slots: 4,
            data_wpq_capacity: 64,
            posmap_wpq_capacity: 64,
            ..Self::paper_default()
        }
    }

    /// Returns a copy with a different tree height.
    pub fn with_levels(mut self, levels: u32) -> Self {
        self.levels = levels;
        self
    }

    /// Returns a copy with the given WPQ capacities (e.g. the paper's
    /// 4-entry limited-persistence-domain study).
    pub fn with_wpq_capacity(mut self, data: usize, posmap: usize) -> Self {
        self.data_wpq_capacity = data;
        self.posmap_wpq_capacity = posmap;
        self
    }

    /// Number of leaves (`2^L`).
    pub fn num_leaves(&self) -> u64 {
        1u64 << self.levels
    }

    /// Number of buckets (`2^(L+1) - 1`).
    pub fn num_buckets(&self) -> u64 {
        (1u64 << (self.levels + 1)) - 1
    }

    /// Block slots on one path: `Z * (L + 1)`.
    pub fn path_slots(&self) -> usize {
        self.bucket_slots * (self.levels as usize + 1)
    }

    /// Number of logical blocks the ORAM stores (total slots times
    /// utilization).
    pub fn capacity_blocks(&self) -> u64 {
        (self.num_buckets() as f64 * self.bucket_slots as f64 * self.utilization) as u64
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is degenerate (zero sizes, utilization
    /// outside `(0, 1]`, or `L` large enough to overflow leaf arithmetic).
    pub fn validate(&self) {
        assert!(self.levels >= 1 && self.levels < 48, "levels out of range");
        assert!(self.bucket_slots >= 1, "need at least one slot per bucket");
        assert!(self.payload_bytes > 0 && self.payload_bytes <= self.block_bytes);
        assert!(self.stash_capacity > 0, "stash must be non-empty");
        assert!(self.utilization > 0.0 && self.utilization <= 1.0);
        assert!(self.data_wpq_capacity > 0 && self.posmap_wpq_capacity > 0);
    }
}

impl Default for OramConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Errors returned by ORAM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OramError {
    /// The logical address exceeds the ORAM capacity.
    AddressOutOfRange {
        /// Offending address.
        addr: BlockAddr,
        /// Number of addressable blocks.
        capacity: u64,
    },
    /// The stash overflowed — statistically negligible for correctly sized
    /// stashes, but surfaced rather than silently dropped.
    StashOverflow {
        /// Configured capacity that was exceeded.
        capacity: usize,
    },
    /// The temporary PosMap is full; the controller cannot track another
    /// remapped block until an eviction drains it.
    TempPosMapOverflow {
        /// Configured capacity that was exceeded.
        capacity: usize,
    },
    /// Payload length differs from the configured payload size.
    PayloadSize {
        /// Expected length in bytes.
        expected: usize,
        /// Provided length in bytes.
        got: usize,
    },
    /// The controller is in a crashed state; call `recover` first.
    Crashed,
    /// A fetched path failed Merkle verification — the NVM content was
    /// tampered with (only with integrity protection enabled).
    IntegrityViolation {
        /// The path whose verification failed.
        leaf: Leaf,
    },
    /// The WPQ persistence domain rejected a drainer signal or push and
    /// the controller could not recover by stalling.
    Wpq(psoram_nvm::WpqError),
    /// The controller latched fail-safe poisoned state: device damage it
    /// could neither repair from a redundant copy nor retry past. Every
    /// access fails until the instance is rebuilt.
    Poisoned {
        /// The device fault class that forced the fail-safe.
        class: psoram_nvm::FaultClass,
    },
    /// An internal invariant did not hold at runtime. Replaces `panic!`
    /// aborts on the persist/recovery paths: the access fails, the
    /// controller survives.
    Invariant {
        /// The invariant that was violated.
        context: &'static str,
    },
}

impl std::fmt::Display for OramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OramError::AddressOutOfRange { addr, capacity } => {
                write!(
                    f,
                    "address {addr} out of range (capacity {capacity} blocks)"
                )
            }
            OramError::StashOverflow { capacity } => {
                write!(f, "stash overflow (capacity {capacity})")
            }
            OramError::TempPosMapOverflow { capacity } => {
                write!(f, "temporary PosMap overflow (capacity {capacity})")
            }
            OramError::PayloadSize { expected, got } => {
                write!(
                    f,
                    "payload size mismatch (expected {expected} bytes, got {got})"
                )
            }
            OramError::Crashed => write!(f, "controller crashed; recovery required"),
            OramError::IntegrityViolation { leaf } => {
                write!(f, "integrity violation on path {leaf}")
            }
            OramError::Wpq(e) => write!(f, "WPQ persistence domain: {e}"),
            OramError::Poisoned { class } => {
                write!(f, "controller poisoned by unrepairable {class} fault")
            }
            OramError::Invariant { context } => {
                write!(f, "internal invariant violated: {context}")
            }
        }
    }
}

impl std::error::Error for OramError {}

impl From<psoram_nvm::WpqError> for OramError {
    fn from(e: psoram_nvm::WpqError) -> Self {
        OramError::Wpq(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_geometry() {
        let c = OramConfig::paper_default();
        assert_eq!(c.num_leaves(), 1 << 23);
        assert_eq!(c.num_buckets(), (1 << 24) - 1);
        assert_eq!(c.path_slots(), 96);
        // 50% of (2^24 - 1) * 4 slots — about 2^25 blocks (~2 GB of data).
        assert_eq!(c.capacity_blocks(), ((1u64 << 24) - 1) * 2);
        c.validate();
    }

    #[test]
    fn small_test_geometry() {
        let c = OramConfig::small_test();
        assert_eq!(c.num_leaves(), 64);
        assert_eq!(c.num_buckets(), 127);
        assert_eq!(c.path_slots(), 28);
        c.validate();
    }

    #[test]
    fn with_wpq_capacity_overrides() {
        let c = OramConfig::small_test().with_wpq_capacity(4, 4);
        assert_eq!(c.data_wpq_capacity, 4);
        assert_eq!(c.posmap_wpq_capacity, 4);
    }

    #[test]
    fn with_levels_overrides() {
        assert_eq!(
            OramConfig::paper_default().with_levels(10).num_leaves(),
            1024
        );
    }

    #[test]
    #[should_panic(expected = "levels out of range")]
    fn validate_rejects_zero_levels() {
        OramConfig {
            levels: 0,
            ..OramConfig::small_test()
        }
        .validate();
    }

    #[test]
    fn errors_display() {
        let e = OramError::AddressOutOfRange {
            addr: BlockAddr(9),
            capacity: 4,
        };
        assert!(e.to_string().contains("a9"));
        assert!(OramError::StashOverflow { capacity: 3 }
            .to_string()
            .contains('3'));
        assert!(OramError::Crashed.to_string().contains("recovery"));
    }

    #[test]
    fn display_of_addr_and_leaf() {
        assert_eq!(BlockAddr(5).to_string(), "a5");
        assert_eq!(Leaf(7).to_string(), "l7");
    }
}
