//! # psoram-core
//!
//! Path ORAM, recursive ORAM, and **PS-ORAM** — the crash-consistent ORAM
//! controller of *"PS-ORAM: Efficient Crash Consistency Support for
//! Oblivious RAM on NVM"* (ISCA 2022) — over a simulated NVM memory system.
//!
//! The crate implements the full controller stack:
//!
//! * the sparse NVM-resident [`OramTree`], [`Stash`], [`PosMap`] and
//!   PS-ORAM's [`TempPosMap`];
//! * the five-step access protocol for all seven evaluated designs
//!   ([`ProtocolVariant`]), including the backup (shadow) blocks, the
//!   drainer-signalled atomic WPQ rounds, and dependency-ordered write-back
//!   for small persistence domains;
//! * the recursive PosMap with a Freecursive-style PLB
//!   ([`RecursivePosMap`]);
//! * crash injection at every protocol step ([`CrashPoint`]), recovery, and
//!   a machine-checkable recoverability invariant;
//! * access-pattern recording and statistical obliviousness checks
//!   ([`AccessRecorder`]).
//!
//! # Examples
//!
//! Crash in the middle of an access and recover without losing committed
//! data:
//!
//! ```
//! use psoram_core::{BlockAddr, CrashPoint, OramConfig, PathOram, ProtocolVariant};
//!
//! let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 1);
//! for i in 0..20 {
//!     oram.write(BlockAddr(i), vec![i as u8; 8]).unwrap();
//! }
//! oram.inject_crash(CrashPoint::AfterLoadPath);
//! let _ = oram.read(BlockAddr(0)); // crashes mid-access
//! assert!(oram.is_crashed());
//! assert!(oram.recover().consistent, "PS-ORAM recovers consistently");
//! oram.verify_contents(true).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The in-module freshness proptests expand past the default limit.
#![recursion_limit = "256"]

mod auth;
mod block;
mod bucket;
pub mod chain;
pub mod controller;
mod crash;
pub mod engine;
pub mod eviction;
pub mod integrity;
pub mod oblivious;
mod posmap;
mod recursive;
pub mod ring;
pub mod security;
mod shard;
mod stash;
mod stats;
mod tree;
mod types;

pub use auth::{CounterTree, FreshnessStats, FreshnessVerdict, UnitMeta};
pub use block::{Block, BlockHeader};
pub use bucket::Bucket;
pub use controller::{AccessOutcome, Op, PathOram, ProtocolVariant};
pub use crash::{CrashPoint, CrashReport, RecoveryError, RecoveryIncident, RecoveryReport};
pub use engine::{CommitLedger, CommitModel, EngineStats, PersistEngine, ProtocolPolicy};
pub use eviction::{plan_eviction, EvictionPlan, SlotWrite};
pub use integrity::{IntegrityTree, IntegrityViolation};
pub use posmap::{PosMap, TempPosMap};
pub use recursive::{RecLevel, RecursivePosMap, ENTRIES_PER_BLOCK};
pub use security::{AccessRecorder, ObservedAccess};
pub use shard::{ShardController, ShardRange, ShardStep};
pub use stash::Stash;
pub use stats::OramStats;
pub use tree::{BucketIndex, OramTree};
pub use types::{BlockAddr, Leaf, OramConfig, OramError};
