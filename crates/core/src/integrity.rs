//! A Merkle integrity tree over the ORAM tree, with crash-consistent root
//! updates.
//!
//! PS-ORAM assumes an encryption + integrity substrate (its related work:
//! Triad-NVM, SuperMem, PLP). This module provides the integrity half: a
//! hash tree congruent with the ORAM tree — each node's digest covers its
//! bucket content and its children's digests — whose root lives inside the
//! persistence domain. Path reads verify the fetched buckets against the
//! root; path writes refresh the digests; a crash replays the committed
//! WPQ rounds into the digest state, so recovery never sees a false alarm
//! and tampering is always caught.
//!
//! Like the data tree, the digest store is **sparse**: untouched subtrees
//! use per-depth default digests, so the paper-scale geometry costs memory
//! only for visited paths.

use std::collections::HashMap;

use psoram_crypto::{Digest, Hash128};

use crate::bucket::Bucket;
use crate::tree::BucketIndex;
use crate::types::Leaf;

/// Canonical digest of a bucket's contents: per slot, a presence tag
/// followed by the header fields and payload for real blocks. Every
/// controller that maintains an [`IntegrityTree`] digests buckets through
/// this one encoding.
pub(crate) fn bucket_digest(bucket: &Bucket) -> Digest {
    let mut bytes = Vec::with_capacity(bucket.num_slots() * 40);
    for slot in 0..bucket.num_slots() {
        match bucket.slot(slot) {
            Some(b) => {
                bytes.push(1);
                bytes.extend_from_slice(&b.header.addr.0.to_le_bytes());
                bytes.extend_from_slice(&b.header.leaf.0.to_le_bytes());
                bytes.extend_from_slice(&b.header.seq.to_le_bytes());
                bytes.extend_from_slice(&b.header.iv2.to_le_bytes());
                bytes.extend_from_slice(&b.payload);
            }
            None => bytes.push(0),
        }
    }
    Hash128::new().digest(&bytes)
}

/// Error raised when a fetched path fails verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityViolation {
    /// The path whose verification failed.
    pub leaf: Leaf,
}

impl std::fmt::Display for IntegrityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "integrity violation on path {}", self.leaf)
    }
}

impl std::error::Error for IntegrityViolation {}

/// Sparse Merkle tree mirroring an ORAM tree of height `levels`.
///
/// # Examples
///
/// ```
/// use psoram_core::integrity::IntegrityTree;
/// use psoram_core::Leaf;
/// use psoram_crypto::Hash128;
///
/// let h = Hash128::new();
/// let empty = h.digest(b"empty bucket");
/// let mut tree = IntegrityTree::new(4, empty);
/// let d = h.digest(b"bucket with data");
/// tree.update_buckets(&[(0, d)]);
/// // The honest path verifies; a tampered digest does not.
/// let path = tree.path_digests_template(Leaf(3));
/// assert!(tree.verify_path(Leaf(3), &[(0, d), path[1], path[2], path[3], path[4]]).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct IntegrityTree {
    levels: u32,
    hasher: Hash128,
    /// Bucket digests for materialized buckets.
    buckets: HashMap<BucketIndex, Digest>,
    /// Subtree digests for materialized nodes.
    subtrees: HashMap<BucketIndex, Digest>,
    /// Default bucket digest (the all-dummy bucket encoding).
    default_bucket: Digest,
    /// Default subtree digest per depth (`defaults[levels]` is a leaf).
    defaults: Vec<Digest>,
    /// The root digest, held in the persistence domain.
    root: Digest,
}

impl IntegrityTree {
    /// Builds the tree for an all-dummy ORAM of height `levels`, given the
    /// digest of an empty bucket.
    pub fn new(levels: u32, default_bucket: Digest) -> Self {
        let hasher = Hash128::new();
        let mut defaults = vec![[0u8; 16]; levels as usize + 1];
        defaults[levels as usize] = hasher.digest(&default_bucket);
        for d in (0..levels as usize).rev() {
            defaults[d] =
                hasher.digest_parts(&[&default_bucket, &defaults[d + 1], &defaults[d + 1]]);
        }
        let root = defaults[0];
        IntegrityTree {
            levels,
            hasher,
            buckets: HashMap::new(),
            subtrees: HashMap::new(),
            default_bucket,
            defaults,
            root,
        }
    }

    /// Tree height.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// The current (persisted) root digest.
    pub fn root(&self) -> Digest {
        self.root
    }

    fn depth_of(idx: BucketIndex) -> u32 {
        (64 - (idx + 1).leading_zeros()) - 1
    }

    fn bucket_digest(&self, idx: BucketIndex) -> Digest {
        *self.buckets.get(&idx).unwrap_or(&self.default_bucket)
    }

    fn subtree_digest(&self, idx: BucketIndex) -> Digest {
        self.subtrees
            .get(&idx)
            .copied()
            .unwrap_or_else(|| self.defaults[Self::depth_of(idx) as usize])
    }

    fn compute_subtree(&self, idx: BucketIndex, bucket: &Digest) -> Digest {
        let depth = Self::depth_of(idx);
        if depth == self.levels {
            self.hasher.digest(bucket)
        } else {
            let l = self.subtree_digest(2 * idx + 1);
            let r = self.subtree_digest(2 * idx + 2);
            self.hasher.digest_parts(&[bucket, &l, &r])
        }
    }

    /// Installs new bucket digests and refreshes every affected ancestor,
    /// committing a new root. This is the write-path operation; callers
    /// invoke it when (and only when) the corresponding data writes commit,
    /// which keeps the root consistent with the persisted data.
    pub fn update_buckets(&mut self, updates: &[(BucketIndex, Digest)]) {
        let mut dirty: Vec<BucketIndex> = Vec::new();
        for &(idx, d) in updates {
            self.buckets.insert(idx, d);
            dirty.push(idx);
            let mut cur = idx;
            while cur != 0 {
                cur = (cur - 1) / 2;
                dirty.push(cur);
            }
        }
        dirty.sort_unstable_by_key(|&i| std::cmp::Reverse(Self::depth_of(i)));
        dirty.dedup();
        for idx in dirty {
            let bucket = self.bucket_digest(idx);
            let sub = self.compute_subtree(idx, &bucket);
            self.subtrees.insert(idx, sub);
        }
        self.root = self.subtree_digest(0);
    }

    /// Verifies a fetched path: `observed` pairs each path bucket index
    /// (root first) with the digest of the bytes actually read from NVM.
    ///
    /// # Errors
    ///
    /// Returns [`IntegrityViolation`] when the recomputed root differs from
    /// the persisted root — some fetched bucket (or a recorded sibling) was
    /// tampered with.
    pub fn verify_path(
        &self,
        leaf: Leaf,
        observed: &[(BucketIndex, Digest)],
    ) -> Result<(), IntegrityViolation> {
        // Recompute subtree digests bottom-up along the path, substituting
        // the observed bucket digests; siblings come from the stored state.
        let mut child_digest: Option<(BucketIndex, Digest)> = None;
        for &(idx, bucket) in observed.iter().rev() {
            let depth = Self::depth_of(idx);
            let sub = if depth == self.levels {
                self.hasher.digest(&bucket)
            } else {
                let (lc, rc) = (2 * idx + 1, 2 * idx + 2);
                let l = match child_digest {
                    Some((ci, d)) if ci == lc => d,
                    _ => self.subtree_digest(lc),
                };
                let r = match child_digest {
                    Some((ci, d)) if ci == rc => d,
                    _ => self.subtree_digest(rc),
                };
                self.hasher.digest_parts(&[&bucket, &l, &r])
            };
            child_digest = Some((idx, sub));
        }
        match child_digest {
            Some((0, computed)) if computed == self.root => Ok(()),
            _ => Err(IntegrityViolation { leaf }),
        }
    }

    /// The current stored `(index, digest)` pairs along a path — handy for
    /// constructing honest `verify_path` inputs in tests and tools.
    pub fn path_digests_template(&self, leaf: Leaf) -> Vec<(BucketIndex, Digest)> {
        (0..=self.levels)
            .map(|d| {
                let idx = (1u64 << d) - 1 + (leaf.0 >> (self.levels - d));
                (idx, self.bucket_digest(idx))
            })
            .collect()
    }

    /// Number of materialized digest nodes (memory probe).
    pub fn materialized(&self) -> usize {
        self.subtrees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hasher() -> Hash128 {
        Hash128::new()
    }

    fn empty() -> Digest {
        hasher().digest(b"empty")
    }

    fn tree() -> IntegrityTree {
        IntegrityTree::new(4, empty())
    }

    fn honest_path(t: &IntegrityTree, leaf: Leaf) -> Vec<(BucketIndex, Digest)> {
        t.path_digests_template(leaf)
    }

    #[test]
    fn fresh_tree_verifies_everywhere() {
        let t = tree();
        for l in 0..16 {
            let path = honest_path(&t, Leaf(l));
            t.verify_path(Leaf(l), &path).unwrap();
        }
    }

    #[test]
    fn update_then_verify() {
        let mut t = tree();
        let d = hasher().digest(b"data!");
        let leaf = Leaf(5);
        let path_idx: Vec<BucketIndex> = honest_path(&t, leaf).iter().map(|&(i, _)| i).collect();
        t.update_buckets(&[(path_idx[2], d)]);
        let path = honest_path(&t, leaf);
        t.verify_path(leaf, &path).unwrap();
    }

    #[test]
    fn tampering_any_path_bucket_detected() {
        let mut t = tree();
        let leaf = Leaf(9);
        let updates: Vec<(BucketIndex, Digest)> = honest_path(&t, leaf)
            .iter()
            .enumerate()
            .map(|(i, &(idx, _))| (idx, hasher().digest(&[i as u8; 8])))
            .collect();
        t.update_buckets(&updates);
        for pos in 0..updates.len() {
            let mut observed = honest_path(&t, leaf);
            observed[pos].1 = hasher().digest(b"tampered");
            let err = t.verify_path(leaf, &observed).unwrap_err();
            assert_eq!(err.leaf, leaf);
        }
        // Honest read still passes.
        t.verify_path(leaf, &honest_path(&t, leaf)).unwrap();
    }

    #[test]
    fn sibling_paths_affected_by_shared_prefix_only() {
        let mut t = tree();
        let d = hasher().digest(b"x");
        // Update leaf 0's leaf bucket; path to leaf 15 shares only the root.
        let leaf0_path: Vec<BucketIndex> =
            honest_path(&t, Leaf(0)).iter().map(|&(i, _)| i).collect();
        t.update_buckets(&[(leaf0_path[4], d)]);
        t.verify_path(Leaf(15), &honest_path(&t, Leaf(15))).unwrap();
        t.verify_path(Leaf(0), &honest_path(&t, Leaf(0))).unwrap();
    }

    #[test]
    fn root_changes_with_every_update() {
        let mut t = tree();
        let r0 = t.root();
        t.update_buckets(&[(7, hasher().digest(b"a"))]);
        let r1 = t.root();
        t.update_buckets(&[(7, hasher().digest(b"b"))]);
        let r2 = t.root();
        assert_ne!(r0, r1);
        assert_ne!(r1, r2);
    }

    #[test]
    fn stale_root_rejects_committed_data() {
        // Simulates the crash hazard the WPQ-coupled root update prevents:
        // data updated but root not → verification fails.
        let mut t = tree();
        let leaf = Leaf(3);
        let idxs: Vec<BucketIndex> = honest_path(&t, leaf).iter().map(|&(i, _)| i).collect();
        t.update_buckets(&[(idxs[4], hasher().digest(b"v1"))]);
        let mut observed = honest_path(&t, leaf);
        // The NVM now holds v2 but the root still covers v1.
        observed[4].1 = hasher().digest(b"v2");
        assert!(t.verify_path(leaf, &observed).is_err());
    }

    #[test]
    fn sparse_memory_footprint() {
        let mut t = IntegrityTree::new(20, empty());
        t.update_buckets(&[(12345, hasher().digest(b"y"))]);
        // Only the path to that bucket materializes.
        assert!(t.materialized() <= 21, "materialized {}", t.materialized());
    }

    #[test]
    fn depth_of_heap_indices() {
        assert_eq!(IntegrityTree::depth_of(0), 0);
        assert_eq!(IntegrityTree::depth_of(1), 1);
        assert_eq!(IntegrityTree::depth_of(2), 1);
        assert_eq!(IntegrityTree::depth_of(3), 2);
        assert_eq!(IntegrityTree::depth_of(62), 5);
    }
}
