//! Controller-level statistics.

use serde::{Deserialize, Serialize};

/// Counters accumulated by an ORAM controller.
///
/// NVM-side traffic lives in [`psoram_nvm::NvmStats`]; these counters cover
/// the controller-internal quantities the paper reports on top of it
/// (backup blocks, dirty-entry flushes, on-chip NVM buffer operations for
/// the `FullNVM` designs, stash behaviour).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OramStats {
    /// Total ORAM accesses served.
    pub accesses: u64,
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Accesses whose target was already in the stash.
    pub stash_hits: u64,
    /// Backup (shadow) blocks created (PS-ORAM step ④).
    pub backups_created: u64,
    /// Live shadow copies re-written during eviction to preserve
    /// recoverability.
    pub shadows_rewritten: u64,
    /// Dirty PosMap entries flushed through the PosMap WPQ.
    pub dirty_entries_flushed: u64,
    /// PosMap entry writes issued to NVM (includes Naïve's full-path
    /// flushes).
    pub posmap_entry_writes: u64,
    /// Reads from an on-chip NVM buffer (`FullNVM` stash/PosMap).
    pub onchip_nvm_reads: u64,
    /// Writes to an on-chip NVM buffer (`FullNVM` stash/PosMap).
    pub onchip_nvm_writes: u64,
    /// Atomic eviction rounds committed through the WPQs.
    pub eviction_rounds: u64,
    /// Eviction sub-batches (>1 per round only with small WPQs).
    pub eviction_batches: u64,
    /// Blocks that could not be placed on the eviction path and returned to
    /// the stash.
    pub eviction_leftovers: u64,
    /// Small-WPQ evictions that had to fall back to identity placement
    /// because the greedy plan contained an oversize dependency cycle.
    pub in_place_fallbacks: u64,
    /// Posmap-tree block reads performed by recursive variants.
    pub recursion_reads: u64,
    /// Posmap-tree block writes performed by recursive variants.
    pub recursion_writes: u64,
    /// Stash-snapshot blocks persisted to the NVM stash region
    /// (Rcr-PS-ORAM's "dirty blocks in the stash are persisted").
    pub stash_snapshot_writes: u64,
    /// PosMap Lookaside Buffer hits (recursive variants).
    pub plb_hits: u64,
    /// PosMap Lookaside Buffer misses down to the on-chip root.
    pub plb_full_misses: u64,
    /// Crashes injected or invoked.
    pub crashes: u64,
    /// Recoveries performed.
    pub recoveries: u64,
    /// Recoveries that detected a consistency violation (see
    /// `PathOram::last_recovery` for the violation text).
    pub recovery_failures: u64,
    /// Eviction rounds split early because a WPQ ran out of room (the
    /// controller committed, drained and reopened the round).
    pub wpq_stalls: u64,
    /// Sum of per-access latencies in core cycles.
    pub total_access_cycles: u64,
}

impl psoram_obsv::MetricsSource for OramStats {
    fn publish(&self, prefix: &str, reg: &mut psoram_obsv::MetricsRegistry) {
        use psoram_obsv::MetricsRegistry as R;
        reg.set_counter(&R::key(prefix, "accesses"), self.accesses);
        reg.set_counter(&R::key(prefix, "reads"), self.reads);
        reg.set_counter(&R::key(prefix, "writes"), self.writes);
        reg.set_counter(&R::key(prefix, "stash_hits"), self.stash_hits);
        reg.set_counter(&R::key(prefix, "backups_created"), self.backups_created);
        reg.set_counter(&R::key(prefix, "shadows_rewritten"), self.shadows_rewritten);
        reg.set_counter(
            &R::key(prefix, "dirty_entries_flushed"),
            self.dirty_entries_flushed,
        );
        reg.set_counter(
            &R::key(prefix, "posmap_entry_writes"),
            self.posmap_entry_writes,
        );
        reg.set_counter(&R::key(prefix, "onchip_nvm_reads"), self.onchip_nvm_reads);
        reg.set_counter(&R::key(prefix, "onchip_nvm_writes"), self.onchip_nvm_writes);
        reg.set_counter(&R::key(prefix, "eviction_rounds"), self.eviction_rounds);
        reg.set_counter(&R::key(prefix, "eviction_batches"), self.eviction_batches);
        reg.set_counter(
            &R::key(prefix, "eviction_leftovers"),
            self.eviction_leftovers,
        );
        reg.set_counter(
            &R::key(prefix, "in_place_fallbacks"),
            self.in_place_fallbacks,
        );
        reg.set_counter(&R::key(prefix, "recursion_reads"), self.recursion_reads);
        reg.set_counter(&R::key(prefix, "recursion_writes"), self.recursion_writes);
        reg.set_counter(
            &R::key(prefix, "stash_snapshot_writes"),
            self.stash_snapshot_writes,
        );
        reg.set_counter(&R::key(prefix, "plb_hits"), self.plb_hits);
        reg.set_counter(&R::key(prefix, "plb_full_misses"), self.plb_full_misses);
        reg.set_counter(&R::key(prefix, "crashes"), self.crashes);
        reg.set_counter(&R::key(prefix, "recoveries"), self.recoveries);
        reg.set_counter(&R::key(prefix, "recovery_failures"), self.recovery_failures);
        reg.set_counter(&R::key(prefix, "wpq_stalls"), self.wpq_stalls);
        reg.set_counter(
            &R::key(prefix, "total_access_cycles"),
            self.total_access_cycles,
        );
        reg.set_gauge(
            &R::key(prefix, "mean_access_cycles"),
            self.mean_access_cycles(),
        );
    }
}

impl OramStats {
    /// Component-wise difference (`self - earlier`), for measuring an
    /// interval that excludes warmup.
    pub fn since(&self, earlier: &OramStats) -> OramStats {
        OramStats {
            accesses: self.accesses - earlier.accesses,
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            stash_hits: self.stash_hits - earlier.stash_hits,
            backups_created: self.backups_created - earlier.backups_created,
            shadows_rewritten: self.shadows_rewritten - earlier.shadows_rewritten,
            dirty_entries_flushed: self.dirty_entries_flushed - earlier.dirty_entries_flushed,
            posmap_entry_writes: self.posmap_entry_writes - earlier.posmap_entry_writes,
            onchip_nvm_reads: self.onchip_nvm_reads - earlier.onchip_nvm_reads,
            onchip_nvm_writes: self.onchip_nvm_writes - earlier.onchip_nvm_writes,
            eviction_rounds: self.eviction_rounds - earlier.eviction_rounds,
            eviction_batches: self.eviction_batches - earlier.eviction_batches,
            eviction_leftovers: self.eviction_leftovers - earlier.eviction_leftovers,
            in_place_fallbacks: self.in_place_fallbacks - earlier.in_place_fallbacks,
            recursion_reads: self.recursion_reads - earlier.recursion_reads,
            recursion_writes: self.recursion_writes - earlier.recursion_writes,
            stash_snapshot_writes: self.stash_snapshot_writes - earlier.stash_snapshot_writes,
            plb_hits: self.plb_hits - earlier.plb_hits,
            plb_full_misses: self.plb_full_misses - earlier.plb_full_misses,
            crashes: self.crashes - earlier.crashes,
            recoveries: self.recoveries - earlier.recoveries,
            recovery_failures: self.recovery_failures - earlier.recovery_failures,
            wpq_stalls: self.wpq_stalls - earlier.wpq_stalls,
            total_access_cycles: self.total_access_cycles - earlier.total_access_cycles,
        }
    }

    /// Mean access latency in core cycles.
    pub fn mean_access_cycles(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_access_cycles as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_access_cycles_handles_zero() {
        assert_eq!(OramStats::default().mean_access_cycles(), 0.0);
    }

    #[test]
    fn mean_access_cycles_divides() {
        let s = OramStats {
            accesses: 4,
            total_access_cycles: 100,
            ..Default::default()
        };
        assert!((s.mean_access_cycles() - 25.0).abs() < 1e-12);
    }
}
