//! Tree buckets: Path ORAM's `Z`-slot [`Bucket`] and Ring ORAM's
//! permuted `Z + S`-slot [`RingBucket`].

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use crate::block::Block;
use crate::types::BlockAddr;

/// One node of the ORAM tree, holding up to `Z` blocks.
///
/// Empty slots model dummy blocks (address `⊥` in the paper). On the real
/// memory bus every slot — dummy or not — is transferred and re-encrypted,
/// which the timing layer accounts for; the functional layer only stores
/// real blocks.
///
/// # Examples
///
/// ```
/// use psoram_core::{Bucket, Block, BlockAddr, Leaf};
///
/// let mut b = Bucket::new(4);
/// assert_eq!(b.free_slots(), 4);
/// b.insert(Block::new(BlockAddr(1), Leaf(0), vec![0; 8])).unwrap();
/// assert_eq!(b.free_slots(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bucket {
    slots: Vec<Option<Block>>,
}

impl Bucket {
    /// Creates an all-dummy bucket with `z` slots.
    pub fn new(z: usize) -> Self {
        Bucket {
            slots: vec![None; z],
        }
    }

    /// Number of slots (`Z`).
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Number of empty (dummy) slots.
    pub fn free_slots(&self) -> usize {
        self.slots.iter().filter(|s| s.is_none()).count()
    }

    /// Number of real blocks stored.
    pub fn occupancy(&self) -> usize {
        self.num_slots() - self.free_slots()
    }

    /// Inserts a block into the first free slot, returning its slot index.
    ///
    /// # Errors
    ///
    /// Returns the block back if the bucket is full.
    pub fn insert(&mut self, block: Block) -> Result<usize, Block> {
        match self.slots.iter_mut().enumerate().find(|(_, s)| s.is_none()) {
            Some((i, slot)) => {
                *slot = Some(block);
                Ok(i)
            }
            None => Err(block),
        }
    }

    /// Replaces the contents of slot `idx` (dummy if `None`), returning the
    /// previous occupant.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_slot(&mut self, idx: usize, block: Option<Block>) -> Option<Block> {
        std::mem::replace(&mut self.slots[idx], block)
    }

    /// Takes all real blocks out, leaving the bucket all-dummy.
    pub fn take_blocks(&mut self) -> Vec<Block> {
        self.slots.iter_mut().filter_map(Option::take).collect()
    }

    /// Immutable view of a slot.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn slot(&self, idx: usize) -> Option<&Block> {
        self.slots[idx].as_ref()
    }

    /// Iterates over the real blocks in the bucket.
    pub fn blocks(&self) -> impl Iterator<Item = &Block> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// `true` if every slot is a dummy.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }
}

/// One Ring ORAM bucket: `Z + S` physical slots behind a permutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct RingBucket {
    /// Physical slots; `None` is an (encrypted) dummy.
    pub(crate) slots: Vec<Option<Block>>,
    /// Slot not yet consumed by a read since the last rewrite.
    pub(crate) valid: Vec<bool>,
    /// Reads since the last rewrite.
    pub(crate) count: usize,
}

impl RingBucket {
    pub(crate) fn new(physical: usize) -> Self {
        RingBucket {
            slots: vec![None; physical],
            valid: vec![true; physical],
            count: 0,
        }
    }

    /// Builds a freshly permuted bucket from up to `Z` real blocks.
    pub(crate) fn from_blocks(blocks: Vec<Block>, physical: usize, rng: &mut StdRng) -> Self {
        let mut slots: Vec<Option<Block>> = blocks.into_iter().map(Some).collect();
        slots.resize(physical, None);
        slots.shuffle(rng);
        RingBucket {
            slots,
            valid: vec![true; physical],
            count: 0,
        }
    }

    pub(crate) fn find_valid(&self, addr: BlockAddr) -> Option<usize> {
        self.slots.iter().enumerate().find_map(|(i, s)| match s {
            Some(b) if self.valid[i] && b.addr() == addr && !b.is_backup => Some(i),
            _ => None,
        })
    }

    pub(crate) fn random_valid_dummy(&self, rng: &mut StdRng) -> Option<usize> {
        let dummies: Vec<usize> = (0..self.slots.len())
            .filter(|&i| self.valid[i] && self.slots[i].is_none())
            .collect();
        dummies.choose(rng).copied()
    }

    /// All real blocks physically present — valid *or* consumed; consumed
    /// slots still hold the bytes until the next rewrite, which is exactly
    /// what crash recovery exploits.
    pub(crate) fn real_blocks(&self) -> Vec<Block> {
        self.slots.iter().flatten().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{BlockAddr, Leaf};

    fn blk(a: u64) -> Block {
        Block::new(BlockAddr(a), Leaf(0), vec![0; 8])
    }

    #[test]
    fn insert_until_full() {
        let mut b = Bucket::new(2);
        assert!(b.insert(blk(1)).is_ok());
        assert!(b.insert(blk(2)).is_ok());
        let rejected = b.insert(blk(3)).unwrap_err();
        assert_eq!(rejected.addr(), BlockAddr(3));
        assert_eq!(b.occupancy(), 2);
    }

    #[test]
    fn take_blocks_empties_bucket() {
        let mut b = Bucket::new(4);
        b.insert(blk(1)).unwrap();
        b.insert(blk(2)).unwrap();
        let taken = b.take_blocks();
        assert_eq!(taken.len(), 2);
        assert!(b.is_empty());
        assert_eq!(b.free_slots(), 4);
    }

    #[test]
    fn set_slot_replaces_and_returns_previous() {
        let mut b = Bucket::new(2);
        b.insert(blk(1)).unwrap();
        let prev = b.set_slot(0, Some(blk(9)));
        assert_eq!(prev.unwrap().addr(), BlockAddr(1));
        assert_eq!(b.slot(0).unwrap().addr(), BlockAddr(9));
        let prev = b.set_slot(0, None);
        assert_eq!(prev.unwrap().addr(), BlockAddr(9));
        assert!(b.is_empty());
    }

    #[test]
    fn blocks_iterates_only_real() {
        let mut b = Bucket::new(4);
        b.insert(blk(5)).unwrap();
        assert_eq!(b.blocks().count(), 1);
    }
}
