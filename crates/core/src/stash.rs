//! The ORAM stash: a small on-chip buffer of in-flight blocks.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::block::Block;
use crate::types::{BlockAddr, OramError};

/// The on-chip stash (`C = 200` entries in the paper's Table 3).
///
/// Holds blocks between a path read and their eviction. PS-ORAM backup
/// (shadow) blocks live here too but are invisible to lookups.
///
/// Lookups go through a primary-address index (`addr → slot`) instead of a
/// linear scan: with every access doing several `get`/`contains` probes over
/// an up-to-`C`-entry stash, the scans were a measurable slice of the hot
/// path. The `blocks` vector stays the source of truth — eviction iterates
/// it in insertion order exactly as before — and the index always points at
/// the *first* primary copy of an address, matching the old first-match scan
/// semantics.
///
/// # Examples
///
/// ```
/// use psoram_core::{Stash, Block, BlockAddr, Leaf};
///
/// let mut s = Stash::new(10);
/// s.insert(Block::new(BlockAddr(1), Leaf(0), vec![9; 8])).unwrap();
/// assert!(s.get(BlockAddr(1)).is_some());
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Stash {
    capacity: usize,
    blocks: Vec<Block>,
    max_occupancy: usize,
    /// Primary-block index: logical address → position in `blocks` of the
    /// first non-backup copy. Backups are never indexed.
    index: BTreeMap<u64, usize>,
}

impl Stash {
    /// Creates an empty stash bounded at `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "stash capacity must be positive");
        Stash {
            capacity,
            blocks: Vec::new(),
            max_occupancy: 0,
            index: BTreeMap::new(),
        }
    }

    /// Rebuilds the primary index from `blocks` (first primary copy wins).
    fn rebuild_index(&mut self) {
        self.index.clear();
        for (i, b) in self.blocks.iter().enumerate() {
            if !b.is_backup {
                self.index.entry(b.addr().0).or_insert(i);
            }
        }
    }

    /// Inserts a block.
    ///
    /// # Errors
    ///
    /// Returns [`OramError::StashOverflow`] when at capacity — a correctly
    /// sized stash makes this statistically negligible, but the condition is
    /// surfaced rather than silently dropping data.
    pub fn insert(&mut self, block: Block) -> Result<(), OramError> {
        if self.blocks.len() >= self.capacity {
            return Err(OramError::StashOverflow {
                capacity: self.capacity,
            });
        }
        if !block.is_backup {
            // An earlier primary copy keeps winning lookups, as it did with
            // the linear first-match scan.
            self.index
                .entry(block.addr().0)
                .or_insert(self.blocks.len());
        }
        self.blocks.push(block);
        self.max_occupancy = self.max_occupancy.max(self.blocks.len());
        Ok(())
    }

    /// Looks up the *primary* (non-backup) block at `addr`.
    pub fn get(&self, addr: BlockAddr) -> Option<&Block> {
        self.index.get(&addr.0).map(|&i| &self.blocks[i])
    }

    /// Mutable lookup of the primary block at `addr`.
    pub fn get_mut(&mut self, addr: BlockAddr) -> Option<&mut Block> {
        match self.index.get(&addr.0) {
            Some(&i) => Some(&mut self.blocks[i]),
            None => None,
        }
    }

    /// `true` if a primary copy of `addr` is present.
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.index.contains_key(&addr.0)
    }

    /// Removes and returns blocks matching `pred`.
    pub fn drain_matching(&mut self, mut pred: impl FnMut(&Block) -> bool) -> Vec<Block> {
        let mut kept = Vec::with_capacity(self.blocks.len());
        let mut taken = Vec::new();
        for b in self.blocks.drain(..) {
            if pred(&b) {
                taken.push(b);
            } else {
                kept.push(b);
            }
        }
        self.blocks = kept;
        self.rebuild_index();
        taken
    }

    /// Removes the block at position `idx` (used by the eviction planner).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn remove_at(&mut self, idx: usize) -> Block {
        let b = self.blocks.swap_remove(idx);
        // swap_remove relocates the former tail into `idx`; cheapest safe
        // fix for both affected addresses is a rebuild (the stash is small
        // and eviction removals are batched, not per-lookup).
        self.rebuild_index();
        b
    }

    /// All blocks, including backups.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Current occupancy including backups.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` when the stash holds nothing.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// High-water mark of occupancy (the paper's stash-overflow metric).
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Drops every block — models the loss of volatile state at a crash.
    pub fn wipe(&mut self) {
        self.blocks.clear();
        self.index.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Leaf;

    fn blk(a: u64) -> Block {
        Block::new(BlockAddr(a), Leaf(0), vec![a as u8; 8])
    }

    #[test]
    fn overflow_is_an_error_not_a_drop() {
        let mut s = Stash::new(1);
        s.insert(blk(1)).unwrap();
        let err = s.insert(blk(2)).unwrap_err();
        assert_eq!(err, OramError::StashOverflow { capacity: 1 });
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn lookup_ignores_backups() {
        let mut s = Stash::new(4);
        let primary = blk(7);
        let backup = primary.to_backup(Leaf(3));
        s.insert(backup).unwrap();
        assert!(s.get(BlockAddr(7)).is_none());
        s.insert(primary).unwrap();
        assert!(s.get(BlockAddr(7)).is_some());
        assert!(!s.get(BlockAddr(7)).unwrap().is_backup);
    }

    #[test]
    fn get_mut_allows_update() {
        let mut s = Stash::new(4);
        s.insert(blk(1)).unwrap();
        s.get_mut(BlockAddr(1)).unwrap().payload = vec![0xFF; 8];
        assert_eq!(s.get(BlockAddr(1)).unwrap().payload, vec![0xFF; 8]);
    }

    #[test]
    fn drain_matching_partitions() {
        let mut s = Stash::new(8);
        for a in 0..6 {
            s.insert(blk(a)).unwrap();
        }
        let even = s.drain_matching(|b| b.addr().0 % 2 == 0);
        assert_eq!(even.len(), 3);
        assert_eq!(s.len(), 3);
        assert!(s.blocks().iter().all(|b| b.addr().0 % 2 == 1));
    }

    #[test]
    fn max_occupancy_is_a_high_water_mark() {
        let mut s = Stash::new(8);
        for a in 0..5 {
            s.insert(blk(a)).unwrap();
        }
        s.drain_matching(|_| true);
        assert_eq!(s.len(), 0);
        assert_eq!(s.max_occupancy(), 5);
    }

    #[test]
    fn wipe_models_crash() {
        let mut s = Stash::new(4);
        s.insert(blk(1)).unwrap();
        s.wipe();
        assert!(s.is_empty());
    }

    /// An unindexed reimplementation of the original linear-scan stash,
    /// used as the behavioral oracle for the indexed one.
    struct NaiveStash {
        capacity: usize,
        blocks: Vec<Block>,
    }

    impl NaiveStash {
        fn get(&self, addr: BlockAddr) -> Option<&Block> {
            self.blocks
                .iter()
                .find(|b| !b.is_backup && b.addr() == addr)
        }
    }

    /// The indexed stash must match the old linear-scan behavior on a long
    /// randomized insert/lookup/remove/drain sequence, including duplicate
    /// primaries and backups.
    #[test]
    fn index_matches_linear_scan_on_randomized_sequence() {
        let mut indexed = Stash::new(64);
        let mut naive = NaiveStash {
            capacity: 64,
            blocks: Vec::new(),
        };

        // Small deterministic PRNG so the test needs no dev-dependency.
        let mut state = 0x1234_5678_9ABC_DEFFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };

        for step in 0..4000u64 {
            match next() % 10 {
                // Insert a primary (duplicates allowed and expected).
                0..=3 => {
                    let a = next() % 24;
                    let b = Block::new(BlockAddr(a), Leaf(a % 8), vec![step as u8; 8]);
                    let want = naive.blocks.len() < naive.capacity;
                    if want {
                        naive.blocks.push(b.clone());
                    }
                    assert_eq!(indexed.insert(b).is_ok(), want, "step {step}");
                }
                // Insert a backup of a random address.
                4 => {
                    let a = next() % 24;
                    let b = Block::new(BlockAddr(a), Leaf(a % 8), vec![step as u8; 8])
                        .to_backup(Leaf((a + 1) % 8));
                    if naive.blocks.len() < naive.capacity {
                        naive.blocks.push(b.clone());
                        indexed.insert(b).unwrap();
                    }
                }
                // Point removal at a random slot.
                5 => {
                    if !naive.blocks.is_empty() {
                        let idx = (next() as usize) % naive.blocks.len();
                        let a = naive.blocks.swap_remove(idx);
                        let b = indexed.remove_at(idx);
                        assert_eq!(a, b, "step {step}");
                    }
                }
                // Drain by a random predicate.
                6 => {
                    let bit = next().is_multiple_of(2);
                    let pred = |b: &Block| b.addr().0.is_multiple_of(2) == bit;
                    let mut kept = Vec::new();
                    let mut taken = Vec::new();
                    for b in naive.blocks.drain(..) {
                        if pred(&b) {
                            taken.push(b);
                        } else {
                            kept.push(b);
                        }
                    }
                    naive.blocks = kept;
                    assert_eq!(indexed.drain_matching(pred), taken, "step {step}");
                }
                // Lookups: primary get + contains must agree exactly.
                _ => {
                    let a = BlockAddr(next() % 24);
                    assert_eq!(indexed.get(a), naive.get(a), "step {step} addr {a:?}");
                    assert_eq!(indexed.contains(a), naive.get(a).is_some(), "step {step}");
                }
            }
            // Eviction iterates `blocks()` directly: order must be identical.
            assert_eq!(indexed.blocks(), &naive.blocks[..], "step {step}");
        }
    }

    /// Mutating through `get_mut` must keep index and storage consistent.
    #[test]
    fn get_mut_after_churn_targets_first_primary() {
        let mut s = Stash::new(16);
        s.insert(blk(3)).unwrap();
        s.insert(blk(4)).unwrap();
        s.insert(blk(3)).unwrap(); // duplicate primary: first one wins
        s.get_mut(BlockAddr(3)).unwrap().payload = vec![0xAB; 8];
        assert_eq!(s.blocks()[0].payload, vec![0xAB; 8]);
        assert_eq!(s.blocks()[2].payload, vec![3; 8]);
        // Remove the first copy; the duplicate becomes visible again.
        s.remove_at(0);
        assert_eq!(s.get(BlockAddr(3)).unwrap().payload, vec![3; 8]);
    }
}
