//! The ORAM stash: a small on-chip buffer of in-flight blocks.

use serde::{Deserialize, Serialize};

use crate::block::Block;
use crate::types::{BlockAddr, OramError};

/// The on-chip stash (`C = 200` entries in the paper's Table 3).
///
/// Holds blocks between a path read and their eviction. PS-ORAM backup
/// (shadow) blocks live here too but are invisible to lookups.
///
/// # Examples
///
/// ```
/// use psoram_core::{Stash, Block, BlockAddr, Leaf};
///
/// let mut s = Stash::new(10);
/// s.insert(Block::new(BlockAddr(1), Leaf(0), vec![9; 8])).unwrap();
/// assert!(s.get(BlockAddr(1)).is_some());
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Stash {
    capacity: usize,
    blocks: Vec<Block>,
    max_occupancy: usize,
}

impl Stash {
    /// Creates an empty stash bounded at `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "stash capacity must be positive");
        Stash {
            capacity,
            blocks: Vec::new(),
            max_occupancy: 0,
        }
    }

    /// Inserts a block.
    ///
    /// # Errors
    ///
    /// Returns [`OramError::StashOverflow`] when at capacity — a correctly
    /// sized stash makes this statistically negligible, but the condition is
    /// surfaced rather than silently dropping data.
    pub fn insert(&mut self, block: Block) -> Result<(), OramError> {
        if self.blocks.len() >= self.capacity {
            return Err(OramError::StashOverflow {
                capacity: self.capacity,
            });
        }
        self.blocks.push(block);
        self.max_occupancy = self.max_occupancy.max(self.blocks.len());
        Ok(())
    }

    /// Looks up the *primary* (non-backup) block at `addr`.
    pub fn get(&self, addr: BlockAddr) -> Option<&Block> {
        self.blocks
            .iter()
            .find(|b| !b.is_backup && b.addr() == addr)
    }

    /// Mutable lookup of the primary block at `addr`.
    pub fn get_mut(&mut self, addr: BlockAddr) -> Option<&mut Block> {
        self.blocks
            .iter_mut()
            .find(|b| !b.is_backup && b.addr() == addr)
    }

    /// `true` if a primary copy of `addr` is present.
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.get(addr).is_some()
    }

    /// Removes and returns blocks matching `pred`.
    pub fn drain_matching(&mut self, mut pred: impl FnMut(&Block) -> bool) -> Vec<Block> {
        let mut kept = Vec::with_capacity(self.blocks.len());
        let mut taken = Vec::new();
        for b in self.blocks.drain(..) {
            if pred(&b) {
                taken.push(b);
            } else {
                kept.push(b);
            }
        }
        self.blocks = kept;
        taken
    }

    /// Removes the block at position `idx` (used by the eviction planner).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn remove_at(&mut self, idx: usize) -> Block {
        self.blocks.swap_remove(idx)
    }

    /// All blocks, including backups.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Current occupancy including backups.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` when the stash holds nothing.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// High-water mark of occupancy (the paper's stash-overflow metric).
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Drops every block — models the loss of volatile state at a crash.
    pub fn wipe(&mut self) {
        self.blocks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Leaf;

    fn blk(a: u64) -> Block {
        Block::new(BlockAddr(a), Leaf(0), vec![a as u8; 8])
    }

    #[test]
    fn overflow_is_an_error_not_a_drop() {
        let mut s = Stash::new(1);
        s.insert(blk(1)).unwrap();
        let err = s.insert(blk(2)).unwrap_err();
        assert_eq!(err, OramError::StashOverflow { capacity: 1 });
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn lookup_ignores_backups() {
        let mut s = Stash::new(4);
        let primary = blk(7);
        let backup = primary.to_backup(Leaf(3));
        s.insert(backup).unwrap();
        assert!(s.get(BlockAddr(7)).is_none());
        s.insert(primary).unwrap();
        assert!(s.get(BlockAddr(7)).is_some());
        assert!(!s.get(BlockAddr(7)).unwrap().is_backup);
    }

    #[test]
    fn get_mut_allows_update() {
        let mut s = Stash::new(4);
        s.insert(blk(1)).unwrap();
        s.get_mut(BlockAddr(1)).unwrap().payload = vec![0xFF; 8];
        assert_eq!(s.get(BlockAddr(1)).unwrap().payload, vec![0xFF; 8]);
    }

    #[test]
    fn drain_matching_partitions() {
        let mut s = Stash::new(8);
        for a in 0..6 {
            s.insert(blk(a)).unwrap();
        }
        let even = s.drain_matching(|b| b.addr().0 % 2 == 0);
        assert_eq!(even.len(), 3);
        assert_eq!(s.len(), 3);
        assert!(s.blocks().iter().all(|b| b.addr().0 % 2 == 1));
    }

    #[test]
    fn max_occupancy_is_a_high_water_mark() {
        let mut s = Stash::new(8);
        for a in 0..5 {
            s.insert(blk(a)).unwrap();
        }
        s.drain_matching(|_| true);
        assert_eq!(s.len(), 0);
        assert_eq!(s.max_occupancy(), 5);
    }

    #[test]
    fn wipe_models_crash() {
        let mut s = Stash::new(4);
        s.insert(blk(1)).unwrap();
        s.wipe();
        assert!(s.is_empty());
    }
}
