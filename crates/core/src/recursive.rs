//! Recursive PosMap: geometry, PLB, and NVM access generation.
//!
//! When no trusted memory region exists, the PosMap itself is stored in
//! untrusted NVM as a chain of smaller ORAM trees (paper §4.4, following
//! Freecursive ORAM [19]): `PosMap_1` holds the leaves of data blocks and
//! is stored in `ORAM_1`; `PosMap_2` holds the leaves of `PosMap_1` blocks
//! in `ORAM_2`; and so on, until the top map fits on chip. A PosMap
//! Lookaside Buffer (PLB) caches recently fetched PosMap blocks per level,
//! short-circuiting the recursion.
//!
//! This module models the recursion's *geometry, traffic and timing*
//! exactly (tree sizes, path addresses, PLB hit behaviour); the functional
//! mapping truth stays in [`crate::PosMap`] with per-variant durability
//! semantics, as documented in `DESIGN.md` — the decoupling keeps the
//! crash-recovery oracle exact while the recursion drives the memory
//! system with realistic address streams.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::types::{BlockAddr, OramConfig};

/// PosMap entries packed into one 64 B PosMap block (4 B leaf labels,
/// following the paper's sizing).
pub const ENTRIES_PER_BLOCK: u64 = 16;

/// Geometry of one recursion level's ORAM tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecLevel {
    /// Tree height of this level's ORAM.
    pub levels: u32,
    /// Blocks stored at this level.
    pub blocks: u64,
    /// NVM base address of this level's tree region.
    pub base_addr: u64,
}

impl RecLevel {
    /// Block slots on one path (`Z * (levels + 1)`).
    pub fn path_slots(&self, z: usize) -> usize {
        z * (self.levels as usize + 1)
    }

    /// NVM region size of this level's tree.
    pub fn region_bytes(&self, z: usize, block_bytes: usize) -> u64 {
        ((1u64 << (self.levels + 1)) - 1) * z as u64 * block_bytes as u64
    }
}

/// One recursive-PosMap access, resolved into NVM block addresses.
#[derive(Debug, Clone, Default)]
pub struct RecAccess {
    /// Path-read addresses, per accessed level, in access order (the
    /// innermost/smallest tree is chased first, ending at `PosMap_1`).
    pub reads: Vec<Vec<u64>>,
    /// Path-write addresses, per accessed level, in access order.
    pub writes: Vec<Vec<u64>>,
    /// Recursion levels actually accessed (0 = full PLB hit at level 1).
    pub levels_accessed: usize,
    /// `true` if the access was served by a PLB hit above the root map.
    pub plb_hit: bool,
}

impl RecAccess {
    /// Total blocks read across all accessed levels.
    pub fn total_reads(&self) -> usize {
        self.reads.iter().map(Vec::len).sum()
    }

    /// Total blocks written across all accessed levels.
    pub fn total_writes(&self) -> usize {
        self.writes.iter().map(Vec::len).sum()
    }
}

/// A per-level LRU cache of PosMap block indices (the PLB).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Plb {
    capacity: usize,
    /// Most-recent at the back.
    entries: Vec<u64>,
}

impl Plb {
    fn new(capacity: usize) -> Self {
        Plb {
            capacity,
            entries: Vec::new(),
        }
    }

    fn contains(&self, idx: u64) -> bool {
        self.entries.contains(&idx)
    }

    fn touch(&mut self, idx: u64) {
        if let Some(pos) = self.entries.iter().position(|&e| e == idx) {
            self.entries.remove(pos);
        } else if self.entries.len() >= self.capacity {
            self.entries.remove(0);
        }
        self.entries.push(idx);
    }

    fn clear(&mut self) {
        self.entries.clear();
    }
}

/// The recursive PosMap model: tree chain geometry + PLB + address
/// generation.
///
/// # Examples
///
/// ```
/// use psoram_core::{RecursivePosMap, OramConfig, BlockAddr};
///
/// let cfg = OramConfig::paper_default();
/// let mut rec = RecursivePosMap::new(&cfg, 1 << 33, 128, 99);
/// assert!(rec.num_levels() >= 3);
/// let acc = rec.access(BlockAddr(1234));
/// assert!(acc.total_reads() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct RecursivePosMap {
    levels: Vec<RecLevel>,
    z: usize,
    block_bytes: usize,
    plbs: Vec<Plb>,
    rng: StdRng,
    /// Entries the on-chip root map can hold before recursion must stop.
    onchip_entries: u64,
}

impl RecursivePosMap {
    /// Builds the recursion chain for `cfg`'s data ORAM, placing the posmap
    /// trees at NVM offset `base_addr`, with `plb_capacity` cached PosMap
    /// blocks per level.
    ///
    /// # Panics
    ///
    /// Panics if `plb_capacity` is zero.
    pub fn new(cfg: &OramConfig, base_addr: u64, plb_capacity: usize, seed: u64) -> Self {
        assert!(plb_capacity > 0, "PLB capacity must be positive");
        let onchip_entries = 4096u64;
        let mut levels = Vec::new();
        let mut entries = cfg.capacity_blocks();
        let mut base = base_addr;
        while entries > onchip_entries {
            let blocks = entries.div_ceil(ENTRIES_PER_BLOCK);
            // 50% utilization: buckets >= blocks * 2 / Z.
            let buckets_needed = (blocks * 2).div_ceil(cfg.bucket_slots as u64);
            let mut l = 1u32;
            while ((1u64 << (l + 1)) - 1) < buckets_needed {
                l += 1;
            }
            let level = RecLevel {
                levels: l,
                blocks,
                base_addr: base,
            };
            base += level.region_bytes(cfg.bucket_slots, cfg.block_bytes);
            levels.push(level);
            entries = blocks;
        }
        let plbs = levels.iter().map(|_| Plb::new(plb_capacity)).collect();
        RecursivePosMap {
            levels,
            z: cfg.bucket_slots,
            block_bytes: cfg.block_bytes,
            plbs,
            rng: StdRng::seed_from_u64(seed),
            onchip_entries,
        }
    }

    /// Number of recursion levels (ORAM trees holding PosMap blocks).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Geometry of each level, outermost (largest) first.
    pub fn levels(&self) -> &[RecLevel] {
        &self.levels
    }

    /// Entries held by the on-chip root map.
    pub fn onchip_entries(&self) -> u64 {
        self.onchip_entries
    }

    /// Total NVM bytes occupied by all posmap trees.
    pub fn region_bytes(&self) -> u64 {
        self.levels
            .iter()
            .map(|l| l.region_bytes(self.z, self.block_bytes))
            .sum()
    }

    /// The PosMap-block index holding `addr`'s entry at recursion level `k`
    /// (0-based; level 0 is `PosMap_1`).
    pub fn block_index(&self, addr: BlockAddr, k: usize) -> u64 {
        addr.0 / ENTRIES_PER_BLOCK.pow(k as u32 + 1)
    }

    /// Performs one PosMap access for `addr`: consults the PLBs, decides
    /// how deep the recursion must go, and generates the path read/write
    /// NVM addresses for every accessed level.
    pub fn access(&mut self, addr: BlockAddr) -> RecAccess {
        // Find the shallowest level whose PosMap block is PLB-resident.
        // A hit at level k means levels 0..k must still be accessed.
        let mut hit_level = self.levels.len(); // miss everywhere -> root map
        for k in 0..self.levels.len() {
            if self.plbs[k].contains(self.block_index(addr, k)) {
                hit_level = k;
                break;
            }
        }
        let plb_hit = hit_level < self.levels.len();

        let mut acc = RecAccess {
            levels_accessed: hit_level,
            plb_hit,
            ..Default::default()
        };
        // Access levels deepest-needed first (hit_level-1 .. 0), mirroring
        // the pointer chase from the root map / PLB entry down to PosMap_1.
        for k in (0..hit_level).rev() {
            let level = self.levels[k];
            let leaf = self.rng.gen_range(0..(1u64 << level.levels));
            let path = self.path_addrs(&level, leaf);
            acc.reads.push(path.clone());
            acc.writes.push(path);
            let idx = self.block_index(addr, k);
            self.plbs[k].touch(idx);
        }
        if plb_hit {
            let idx = self.block_index(addr, hit_level);
            self.plbs[hit_level].touch(idx);
        }
        acc
    }

    fn path_addrs(&self, level: &RecLevel, leaf: u64) -> Vec<u64> {
        let mut addrs = Vec::with_capacity(level.path_slots(self.z));
        for d in 0..=level.levels {
            let bucket = (1u64 << d) - 1 + (leaf >> (level.levels - d));
            for slot in 0..self.z {
                addrs.push(
                    level.base_addr
                        + (bucket * self.z as u64 + slot as u64) * self.block_bytes as u64,
                );
            }
        }
        addrs
    }

    /// Worst-case blocks touched by one posmap access (full recursion).
    pub fn max_path_slots(&self) -> usize {
        self.levels.iter().map(|l| l.path_slots(self.z)).sum()
    }

    /// Clears the PLBs (volatile loss at a crash).
    pub fn wipe_plb(&mut self) {
        for plb in &mut self.plbs {
            plb.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(cfg: &OramConfig) -> RecursivePosMap {
        RecursivePosMap::new(cfg, 1 << 40, 64, 7)
    }

    #[test]
    fn paper_config_recursion_depth() {
        let cfg = OramConfig::paper_default();
        let r = rec(&cfg);
        // 2^25 blocks -> 2^21 -> 2^17 -> 2^13 -> 2^9 entries (<= 4096 on chip).
        assert_eq!(r.num_levels(), 4);
        // Levels shrink monotonically.
        for w in r.levels().windows(2) {
            assert!(w[0].levels > w[1].levels);
        }
    }

    #[test]
    fn small_config_may_need_no_recursion() {
        let cfg = OramConfig::small_test();
        let r = rec(&cfg);
        assert_eq!(r.num_levels(), 0, "254-block ORAM fits the on-chip map");
    }

    #[test]
    fn cold_access_walks_all_levels() {
        let cfg = OramConfig::paper_default();
        let mut r = rec(&cfg);
        let acc = r.access(BlockAddr(77));
        assert!(!acc.plb_hit);
        assert_eq!(acc.levels_accessed, r.num_levels());
        assert_eq!(acc.reads.len(), r.num_levels());
        assert_eq!(acc.total_reads(), acc.total_writes());
    }

    #[test]
    fn repeat_access_hits_plb_and_shortens_recursion() {
        let cfg = OramConfig::paper_default();
        let mut r = rec(&cfg);
        let _ = r.access(BlockAddr(77));
        let again = r.access(BlockAddr(77));
        assert!(again.plb_hit);
        assert_eq!(again.levels_accessed, 0, "PosMap_1 block is now cached");
        assert_eq!(again.total_reads(), 0);
    }

    #[test]
    fn neighbouring_addresses_share_posmap_blocks() {
        let cfg = OramConfig::paper_default();
        let mut r = rec(&cfg);
        let _ = r.access(BlockAddr(160));
        // 160 and 161 share the same PosMap_1 block (16 entries per block).
        let neighbor = r.access(BlockAddr(161));
        assert!(neighbor.plb_hit);
    }

    #[test]
    fn wipe_plb_restores_cold_behaviour() {
        let cfg = OramConfig::paper_default();
        let mut r = rec(&cfg);
        let _ = r.access(BlockAddr(5));
        r.wipe_plb();
        let acc = r.access(BlockAddr(5));
        assert!(!acc.plb_hit);
    }

    #[test]
    fn path_addrs_fall_inside_level_region() {
        let cfg = OramConfig::paper_default();
        let mut r = rec(&cfg);
        let acc = r.access(BlockAddr(123456));
        for (lvl_reads, level) in acc.reads.iter().zip(r.levels().iter().rev()) {
            let lo = level.base_addr;
            let hi = level.base_addr + level.region_bytes(4, 64);
            for &a in lvl_reads {
                assert!(a >= lo && a < hi, "addr {a:#x} outside level region");
            }
        }
    }

    #[test]
    fn block_index_packs_16_entries() {
        let cfg = OramConfig::paper_default();
        let r = rec(&cfg);
        assert_eq!(r.block_index(BlockAddr(15), 0), 0);
        assert_eq!(r.block_index(BlockAddr(16), 0), 1);
        assert_eq!(r.block_index(BlockAddr(255), 1), 0);
        assert_eq!(r.block_index(BlockAddr(256), 1), 1);
    }

    #[test]
    fn region_bytes_sums_levels() {
        let cfg = OramConfig::paper_default();
        let r = rec(&cfg);
        let sum: u64 = r.levels().iter().map(|l| l.region_bytes(4, 64)).sum();
        assert_eq!(r.region_bytes(), sum);
    }
}
