//! The NVM-resident ORAM tree, stored sparsely.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::block::Block;
use crate::bucket::Bucket;
use crate::types::{Leaf, OramConfig};

/// Index of a bucket in heap order: the root is `0`, the node at depth `d`,
/// position `i` is `2^d - 1 + i`.
pub type BucketIndex = u64;

/// The external (NVM) ORAM tree.
///
/// The tree is stored **sparsely**: buckets that have never held a real
/// block are implicit all-dummy buckets. This is what makes the paper's
/// 4 GB, `L = 23` geometry simulable — only touched buckets are
/// materialized, while path/addressing arithmetic (the part that drives all
/// timing results) is exact.
///
/// # Examples
///
/// ```
/// use psoram_core::{OramTree, OramConfig, Leaf};
///
/// let cfg = OramConfig::small_test();
/// let tree = OramTree::new(&cfg);
/// let path = tree.path_indices(Leaf(5));
/// assert_eq!(path.len(), cfg.levels as usize + 1);
/// assert_eq!(path[0], 0); // root first
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OramTree {
    levels: u32,
    bucket_slots: usize,
    block_bytes: usize,
    /// Byte offset of this tree inside the simulated NVM address space
    /// (recursive PosMap trees live above the data tree).
    base_addr: u64,
    buckets: HashMap<BucketIndex, Bucket>,
}

impl OramTree {
    /// Creates an empty (all-dummy) tree for `config` at NVM offset 0.
    pub fn new(config: &OramConfig) -> Self {
        Self::with_base(config.levels, config.bucket_slots, config.block_bytes, 0)
    }

    /// Creates an empty tree with explicit geometry and NVM base address.
    pub fn with_base(levels: u32, bucket_slots: usize, block_bytes: usize, base_addr: u64) -> Self {
        OramTree {
            levels,
            bucket_slots,
            block_bytes,
            base_addr,
            buckets: HashMap::new(),
        }
    }

    /// Tree height `L`.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Slots per bucket `Z`.
    pub fn bucket_slots(&self) -> usize {
        self.bucket_slots
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> u64 {
        1u64 << self.levels
    }

    /// Total bucket count.
    pub fn num_buckets(&self) -> u64 {
        (1u64 << (self.levels + 1)) - 1
    }

    /// Total size of the tree region in simulated NVM bytes.
    pub fn region_bytes(&self) -> u64 {
        self.num_buckets() * self.bucket_slots as u64 * self.block_bytes as u64
    }

    /// NVM base address of this tree's region.
    pub fn base_addr(&self) -> u64 {
        self.base_addr
    }

    /// Bucket indices along the path from the root to `leaf`, root first.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    pub fn path_indices(&self, leaf: Leaf) -> Vec<BucketIndex> {
        assert!(leaf.0 < self.num_leaves(), "leaf {leaf} out of range");
        (0..=self.levels)
            .map(|d| (1u64 << d) - 1 + (leaf.0 >> (self.levels - d)))
            .collect()
    }

    /// The bucket index at depth `depth` on the path to `leaf`.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` or `depth` is out of range.
    pub fn bucket_at(&self, leaf: Leaf, depth: u32) -> BucketIndex {
        assert!(depth <= self.levels);
        assert!(leaf.0 < self.num_leaves());
        (1u64 << depth) - 1 + (leaf.0 >> (self.levels - depth))
    }

    /// Depth of the deepest bucket shared by the paths to `a` and `b`.
    pub fn common_depth(&self, a: Leaf, b: Leaf) -> u32 {
        let diff = a.0 ^ b.0;
        if diff == 0 {
            self.levels
        } else {
            // Bit length of the XOR tells the first diverging level.
            self.levels - (64 - diff.leading_zeros())
        }
    }

    /// Simulated NVM byte address of `(bucket, slot)` — used by the timing
    /// layer to spread path blocks over channels and banks.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn slot_nvm_addr(&self, bucket: BucketIndex, slot: usize) -> u64 {
        assert!(slot < self.bucket_slots);
        self.base_addr + (bucket * self.bucket_slots as u64 + slot as u64) * self.block_bytes as u64
    }

    /// Immutable bucket view; unmaterialized buckets read as all-dummy.
    pub fn bucket(&self, idx: BucketIndex) -> Bucket {
        debug_assert!(idx < self.num_buckets());
        self.buckets
            .get(&idx)
            .cloned()
            .unwrap_or_else(|| Bucket::new(self.bucket_slots))
    }

    /// Mutable bucket access, materializing on demand.
    pub fn bucket_mut(&mut self, idx: BucketIndex) -> &mut Bucket {
        debug_assert!(idx < self.num_buckets());
        let z = self.bucket_slots;
        self.buckets.entry(idx).or_insert_with(|| Bucket::new(z))
    }

    /// Removes (returns) every real block on the path to `leaf`, leaving the
    /// path all-dummy. This is the physical effect of a path read followed
    /// by the eventual full-path rewrite.
    pub fn take_path(&mut self, leaf: Leaf) -> Vec<Block> {
        let mut out = Vec::new();
        for idx in self.path_indices(leaf) {
            if let Some(bucket) = self.buckets.get_mut(&idx) {
                out.extend(bucket.take_blocks());
            }
        }
        out
    }

    /// Reads (clones) every real block on the path to `leaf` without
    /// modifying the tree.
    pub fn read_path(&self, leaf: Leaf) -> Vec<Block> {
        let mut out = Vec::new();
        for idx in self.path_indices(leaf) {
            if let Some(bucket) = self.buckets.get(&idx) {
                out.extend(bucket.blocks().cloned());
            }
        }
        out
    }

    /// Overwrites slot `slot` of `bucket` with `block` (dummy if `None`).
    pub fn write_slot(&mut self, bucket: BucketIndex, slot: usize, block: Option<Block>) {
        self.bucket_mut(bucket).set_slot(slot, block);
    }

    /// Test/attack hook: corrupts one byte of the first real block found on
    /// `leaf`'s path, bypassing the controller. Returns `true` if something
    /// was corrupted.
    pub(crate) fn corrupt_first_real_block(&mut self, leaf: Leaf) -> bool {
        for idx in self.path_indices(leaf) {
            let bucket = self.bucket(idx);
            for slot in 0..bucket.num_slots() {
                if let Some(b) = bucket.slot(slot) {
                    let mut evil = b.clone();
                    evil.payload[0] ^= 0xFF;
                    self.write_slot(idx, slot, Some(evil));
                    return true;
                }
            }
        }
        false
    }

    /// Number of materialized (touched) buckets — a memory-footprint probe.
    pub fn materialized_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Total real blocks currently stored in the tree.
    pub fn real_blocks(&self) -> usize {
        self.buckets.values().map(Bucket::occupancy).sum()
    }

    /// Indices of all materialized buckets, sorted — for deterministic
    /// whole-tree scans (tag audits, state digests).
    pub fn materialized_indices(&self) -> Vec<BucketIndex> {
        let mut v: Vec<BucketIndex> = self.buckets.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Searches the path to `leaf` for a non-backup block with address
    /// `addr`, returning a clone.
    pub fn find_on_path(&self, leaf: Leaf, addr: crate::types::BlockAddr) -> Option<Block> {
        for idx in self.path_indices(leaf) {
            if let Some(bucket) = self.buckets.get(&idx) {
                for b in bucket.blocks() {
                    if b.addr() == addr {
                        return Some(b.clone());
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::BlockAddr;

    fn tree() -> OramTree {
        OramTree::new(&OramConfig::small_test()) // L = 6
    }

    #[test]
    fn path_indices_follow_heap_layout() {
        let t = tree();
        // Leaf 0 is the leftmost: indices 0, 1, 3, 7, 15, 31, 63.
        assert_eq!(t.path_indices(Leaf(0)), vec![0, 1, 3, 7, 15, 31, 63]);
        // Leaf 63 is the rightmost.
        assert_eq!(t.path_indices(Leaf(63)), vec![0, 2, 6, 14, 30, 62, 126]);
    }

    #[test]
    fn paths_share_prefix_by_common_depth() {
        let t = tree();
        let a = Leaf(0b000000);
        let b = Leaf(0b000001);
        assert_eq!(t.common_depth(a, b), 5);
        let c = Leaf(0b100000);
        assert_eq!(t.common_depth(a, c), 0);
        assert_eq!(t.common_depth(a, a), 6);
    }

    #[test]
    fn bucket_at_matches_path_indices() {
        let t = tree();
        let leaf = Leaf(37);
        let path = t.path_indices(leaf);
        for (d, &idx) in path.iter().enumerate() {
            assert_eq!(t.bucket_at(leaf, d as u32), idx);
        }
    }

    #[test]
    fn unmaterialized_buckets_read_all_dummy() {
        let t = tree();
        assert!(t.bucket(12).is_empty());
        assert_eq!(t.materialized_buckets(), 0);
    }

    #[test]
    fn write_then_read_path_roundtrips() {
        let mut t = tree();
        let leaf = Leaf(9);
        let idx = t.bucket_at(leaf, 3);
        t.write_slot(idx, 0, Some(Block::new(BlockAddr(42), leaf, vec![7; 8])));
        let found = t.read_path(leaf);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].addr(), BlockAddr(42));
        assert_eq!(t.real_blocks(), 1);
    }

    #[test]
    fn take_path_empties_the_path_only() {
        let mut t = tree();
        t.write_slot(
            t.bucket_at(Leaf(0), 6),
            0,
            Some(Block::new(BlockAddr(1), Leaf(0), vec![0; 8])),
        );
        t.write_slot(
            t.bucket_at(Leaf(63), 6),
            0,
            Some(Block::new(BlockAddr(2), Leaf(63), vec![0; 8])),
        );
        let taken = t.take_path(Leaf(0));
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].addr(), BlockAddr(1));
        assert_eq!(t.real_blocks(), 1); // leaf-63 block untouched
    }

    #[test]
    fn slot_nvm_addresses_are_disjoint_and_block_aligned() {
        let t = tree();
        let a = t.slot_nvm_addr(0, 0);
        let b = t.slot_nvm_addr(0, 1);
        let c = t.slot_nvm_addr(1, 0);
        assert_eq!(b - a, 64);
        assert_eq!(c - a, 4 * 64);
        assert_eq!(a % 64, 0);
    }

    #[test]
    fn region_bytes_matches_geometry() {
        let t = tree();
        assert_eq!(t.region_bytes(), 127 * 4 * 64);
    }

    #[test]
    fn find_on_path_sees_blocks_at_any_depth() {
        let mut t = tree();
        let leaf = Leaf(20);
        t.write_slot(
            t.bucket_at(leaf, 0),
            2,
            Some(Block::new(BlockAddr(5), leaf, vec![1; 8])),
        );
        assert!(t.find_on_path(leaf, BlockAddr(5)).is_some());
        assert!(t.find_on_path(leaf, BlockAddr(6)).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn path_indices_rejects_bad_leaf() {
        let _ = tree().path_indices(Leaf(64));
    }

    #[test]
    fn base_addr_offsets_slot_addresses() {
        let t = OramTree::with_base(3, 4, 64, 1 << 20);
        assert_eq!(t.slot_nvm_addr(0, 0), 1 << 20);
        assert_eq!(t.base_addr(), 1 << 20);
    }
}
