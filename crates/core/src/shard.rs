//! The shard session API: one controller serving a sub-range of a
//! larger logical address space.
//!
//! The multi-tenant service front-end (`psoram-service`) partitions the
//! logical address space across N independent controller instances —
//! each its own persistence domain with its own persist engine, counter
//! tree, and fault plan. [`ShardController`] is the narrow surface a
//! shard worker drives: construct with a [`ShardRange`] of the global
//! space, [`ShardController::step`] one access at a time (returning the
//! value *and* the service-cycle cost, extracted from the monolithic
//! blocking access loop the benches used to time externally), crash and
//! recover in place, or take the wrapped policy back out with
//! [`ShardController::into_policy`].

use crate::crash::RecoveryReport;
use crate::engine::ProtocolPolicy;
use crate::types::{BlockAddr, Op, OramError};

/// A half-open range `[lo, hi)` of **global** logical block addresses
/// owned by one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// First global address owned by the shard.
    pub lo: u64,
    /// One past the last global address owned by the shard.
    pub hi: u64,
}

impl ShardRange {
    /// Number of addresses in the range.
    pub fn len(&self) -> u64 {
        self.hi.saturating_sub(self.lo)
    }

    /// `true` when the range owns no addresses.
    pub fn is_empty(&self) -> bool {
        self.hi <= self.lo
    }

    /// Whether `addr` (global) falls inside the range.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.lo && addr < self.hi
    }

    /// Translates a global address into the shard's local space.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the range; route before translating.
    pub fn to_local(&self, addr: u64) -> u64 {
        assert!(self.contains(addr), "address {addr} outside {self:?}");
        addr - self.lo
    }

    /// Translates a shard-local address back into the global space.
    pub fn to_global(&self, local: u64) -> u64 {
        self.lo + local
    }
}

impl std::fmt::Display for ShardRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

/// The outcome of one shard access step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStep {
    /// The block's value (pre-existing for reads, the new value for
    /// writes).
    pub value: Vec<u8>,
    /// Core cycles the controller spent serving this access (the
    /// controller-clock delta across the step).
    pub service_cycles: u64,
}

/// One shard of a partitioned ORAM service: a controller bound to a
/// sub-range of the global address space.
///
/// The wrapped controller is its own persistence domain — nothing is
/// shared with sibling shards — so a crash, recovery, or device fault on
/// one shard cannot touch another. The session surface is deliberately
/// narrow: route, step, crash, recover, read the clock, or take the
/// policy back.
///
/// # Examples
///
/// ```
/// use psoram_core::{
///     Op, OramConfig, PathOram, ProtocolVariant, ShardController, ShardRange,
/// };
///
/// let oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 7);
/// let range = ShardRange { lo: 100, hi: 140 };
/// let mut shard = ShardController::new(Box::new(oram), range);
/// let w = shard.step(Op::Write, 105, Some(vec![9u8; 8])).unwrap();
/// assert!(w.service_cycles > 0);
/// let r = shard.step(Op::Read, 105, None).unwrap();
/// assert_eq!(r.value, vec![9u8; 8]);
/// ```
pub struct ShardController {
    policy: Box<dyn ProtocolPolicy>,
    range: ShardRange,
    served: u64,
}

impl std::fmt::Debug for ShardController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardController")
            .field("label", &self.policy.label())
            .field("range", &self.range)
            .field("served", &self.served)
            .finish()
    }
}

impl ShardController {
    /// Binds `policy` to `range` of the global address space.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or larger than the controller's
    /// block capacity — the shard must be able to hold every address it
    /// owns.
    pub fn new(policy: Box<dyn ProtocolPolicy>, range: ShardRange) -> Self {
        assert!(!range.is_empty(), "shard range {range} is empty");
        assert!(
            range.len() <= policy.capacity_blocks(),
            "shard range {range} exceeds controller capacity {}",
            policy.capacity_blocks()
        );
        ShardController {
            policy,
            range,
            served: 0,
        }
    }

    /// The global address range this shard owns.
    pub fn range(&self) -> ShardRange {
        self.range
    }

    /// Accesses served so far (successful steps).
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Executes exactly one access against the shard and reports its
    /// value and service-cycle cost. `addr` is **global**; it must fall
    /// inside [`ShardController::range`].
    ///
    /// # Errors
    ///
    /// [`OramError::AddressOutOfRange`] when `addr` is not owned by this
    /// shard (a routing bug); otherwise whatever the controller returns
    /// (notably [`OramError::Crashed`] when a crash fires mid-access).
    pub fn step(
        &mut self,
        op: Op,
        addr: u64,
        data: Option<Vec<u8>>,
    ) -> Result<ShardStep, OramError> {
        if !self.range.contains(addr) {
            return Err(OramError::AddressOutOfRange {
                addr: BlockAddr(addr),
                capacity: self.range.len(),
            });
        }
        let local = self.range.to_local(addr);
        let before = self.policy.clock();
        let value = match op {
            Op::Write => {
                let payload = data.ok_or(OramError::PayloadSize {
                    expected: self.policy.payload_bytes(),
                    got: 0,
                })?;
                self.policy.write(local, payload.clone())?;
                payload
            }
            Op::Read => self.policy.read(local)?,
        };
        self.served += 1;
        Ok(ShardStep {
            value,
            service_cycles: self.policy.clock().saturating_sub(before),
        })
    }

    /// Immediately executes a power failure on this shard only.
    pub fn crash_now(&mut self) {
        self.policy.crash_now();
    }

    /// Runs the shard's recovery procedure, returning the report and the
    /// controller-clock delta it consumed (charged to this shard's lane
    /// only; the siblings keep serving). The delta can be zero — the
    /// controllers account recovery outside the access clock — so
    /// schedulers typically add their own modeled reboot penalty on top.
    pub fn recover(&mut self) -> (RecoveryReport, u64) {
        let before = self.policy.clock();
        let report = self.policy.recover();
        let cycles = self.policy.clock().saturating_sub(before);
        (report, cycles)
    }

    /// `true` between a crash and the matching recovery.
    pub fn is_crashed(&self) -> bool {
        self.policy.is_crashed()
    }

    /// The shard controller's core-cycle clock.
    pub fn clock(&self) -> u64 {
        self.policy.clock()
    }

    /// Shared read access to the wrapped policy.
    pub fn policy(&self) -> &dyn ProtocolPolicy {
        &*self.policy
    }

    /// Mutable access to the wrapped policy (fault-plan arming,
    /// recorder attachment).
    pub fn policy_mut(&mut self) -> &mut dyn ProtocolPolicy {
        &mut *self.policy
    }

    /// Dissolves the session and hands the controller back (takeable
    /// ownership: the service can rebuild a poisoned shard in place).
    pub fn into_policy(self) -> Box<dyn ProtocolPolicy> {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{PathOram, ProtocolVariant};
    use crate::types::OramConfig;

    fn shard(lo: u64, hi: u64) -> ShardController {
        let oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 11);
        ShardController::new(Box::new(oram), ShardRange { lo, hi })
    }

    #[test]
    fn range_translation_round_trips() {
        let r = ShardRange { lo: 64, hi: 96 };
        assert_eq!(r.len(), 32);
        assert!(r.contains(64) && r.contains(95) && !r.contains(96));
        assert_eq!(r.to_local(70), 6);
        assert_eq!(r.to_global(6), 70);
    }

    #[test]
    fn step_translates_and_charges_cycles() {
        let mut s = shard(200, 240);
        let w = s.step(Op::Write, 239, Some(vec![3u8; 8])).unwrap();
        assert!(w.service_cycles > 0);
        let r = s.step(Op::Read, 239, None).unwrap();
        assert_eq!(r.value, vec![3u8; 8]);
        assert_eq!(s.served(), 2);
    }

    #[test]
    fn out_of_range_address_is_a_routing_error() {
        let mut s = shard(0, 16);
        let err = s.step(Op::Read, 16, None).unwrap_err();
        assert!(matches!(err, OramError::AddressOutOfRange { .. }));
        assert_eq!(s.served(), 0);
    }

    #[test]
    fn crash_recover_preserves_committed_writes() {
        let mut s = shard(32, 64);
        for a in 32..40u64 {
            s.step(Op::Write, a, Some(vec![a as u8; 8])).unwrap();
        }
        s.crash_now();
        assert!(s.is_crashed());
        let clock_before = s.clock();
        let (report, cycles) = s.recover();
        assert!(report.consistent, "PS-ORAM shard must recover consistently");
        assert_eq!(cycles, s.clock() - clock_before);
        assert!(!s.is_crashed());
        for a in 32..40u64 {
            assert_eq!(s.step(Op::Read, a, None).unwrap().value, vec![a as u8; 8]);
        }
    }

    #[test]
    fn into_policy_hands_the_controller_back() {
        let mut s = shard(0, 32);
        s.step(Op::Write, 1, Some(vec![1u8; 8])).unwrap();
        let mut policy = s.into_policy();
        assert_eq!(policy.read(1).unwrap(), vec![1u8; 8]);
    }

    #[test]
    #[should_panic(expected = "exceeds controller capacity")]
    fn oversized_range_is_rejected() {
        let oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 1);
        let cap = psoram_tests_capacity(&oram);
        ShardController::new(Box::new(oram), ShardRange { lo: 0, hi: cap + 1 });
    }

    fn psoram_tests_capacity(oram: &PathOram) -> u64 {
        oram.config().capacity_blocks()
    }
}
