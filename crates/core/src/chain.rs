//! A fully functional recursive position map: real nested Path ORAMs
//! storing PosMap entries (paper §4.4, following Freecursive ORAM).
//!
//! The timing/traffic side of recursion lives in [`crate::RecursivePosMap`]
//! (geometry, PLB, NVM address streams); the controller's mapping truth is
//! an overlay [`crate::PosMap`] (DESIGN.md §5a.4). This module provides the
//! missing third leg: a *functional* chain of position-map ORAMs, where
//! each level's blocks physically hold the leaf labels of the level below
//! and every access performs the Freecursive top-down read-modify-write
//! walk. Differential tests validate that the chain stores and retrieves
//! mappings exactly like a flat table, closing the fidelity argument for
//! the decoupled design.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// PosMap entries per 64 B block (4 B labels).
pub const CHAIN_ENTRIES_PER_BLOCK: u64 = 16;

/// A functional (untimed) Path ORAM storing fixed-arity entry blocks.
///
/// Blocks are identified by their index; payloads are `ENTRIES_PER_BLOCK`
/// labels. The caller supplies each accessed block's current leaf (from the
/// level above) and its freshly drawn new leaf, exactly like hardware.
#[derive(Debug, Clone)]
struct MiniOram {
    levels: u32,
    z: usize,
    /// bucket index -> resident blocks `(block_idx, current_leaf, entries)`.
    buckets: HashMap<u64, Vec<(u64, u64, Vec<u64>)>>,
    stash: Vec<(u64, u64, Vec<u64>)>,
    max_stash: usize,
}

impl MiniOram {
    fn new(levels: u32, z: usize) -> Self {
        MiniOram {
            levels,
            z,
            buckets: HashMap::new(),
            stash: Vec::new(),
            max_stash: 0,
        }
    }

    fn num_leaves(&self) -> u64 {
        1 << self.levels
    }

    fn path(&self, leaf: u64) -> Vec<u64> {
        (0..=self.levels)
            .map(|d| (1u64 << d) - 1 + (leaf >> (self.levels - d)))
            .collect()
    }

    fn common_depth(&self, a: u64, b: u64) -> u32 {
        let diff = a ^ b;
        if diff == 0 {
            self.levels
        } else {
            self.levels - (64 - diff.leading_zeros())
        }
    }

    /// Fetches block `idx` from the path to `leaf` (or materializes it with
    /// `default` entries), remaps it to `new_leaf`, lets `edit` mutate its
    /// entries, and evicts the path. This is one recursion step of a
    /// Freecursive walk.
    fn access(
        &mut self,
        idx: u64,
        leaf: u64,
        new_leaf: u64,
        default: u64,
        edit: impl FnOnce(&mut Vec<u64>) -> u64,
    ) -> u64 {
        // Fetch the whole path into the stash.
        let path = self.path(leaf);
        for b in &path {
            if let Some(blocks) = self.buckets.get_mut(b) {
                self.stash.append(blocks);
            }
        }
        // Find or create the target block.
        let pos = self.stash.iter().position(|(i, _, _)| *i == idx);
        let mut block = match pos {
            Some(p) => self.stash.swap_remove(p),
            None => (
                idx,
                new_leaf,
                vec![default; CHAIN_ENTRIES_PER_BLOCK as usize],
            ),
        };
        block.1 = new_leaf;
        let result = edit(&mut block.2);
        self.stash.push(block);
        self.max_stash = self.max_stash.max(self.stash.len());

        // Greedy deepest-first eviction onto the fetched path.
        let mut remaining = std::mem::take(&mut self.stash);
        remaining.sort_by_key(|(_, l, _)| std::cmp::Reverse(self.common_depth(*l, leaf)));
        for item in remaining {
            let max_d = self.common_depth(item.1, leaf) as usize;
            let mut placed = false;
            for d in (0..=max_d).rev() {
                let bucket = self.buckets.entry(path[d]).or_default();
                if bucket.len() < self.z {
                    bucket.push(item.clone());
                    placed = true;
                    break;
                }
            }
            if !placed {
                self.stash.push(item);
            }
        }
        result
    }
}

/// A functional recursive position map (Freecursive-style chain).
///
/// # Examples
///
/// ```
/// use psoram_core::chain::FunctionalRecursiveMap;
///
/// let mut map = FunctionalRecursiveMap::new(1 << 14, 1 << 12, 9);
/// assert!(map.num_levels() >= 1);
/// let old = map.update(42, 1234);
/// assert_eq!(old, 0, "entries start unassigned");
/// assert_eq!(map.update(42, 99), 1234, "previous label returned");
/// ```
#[derive(Debug)]
pub struct FunctionalRecursiveMap {
    /// `orams[0]` stores data-block labels; `orams[k]` stores the leaves of
    /// `orams[k-1]`'s blocks.
    orams: Vec<MiniOram>,
    /// On-chip top map: leaves of the outermost level's blocks.
    top: Vec<u64>,
    rng: StdRng,
    accesses: u64,
}

impl FunctionalRecursiveMap {
    /// Builds a chain covering `entries` data blocks, recursing until a
    /// level fits within `onchip_entries`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `onchip_entries` is zero.
    pub fn new(entries: u64, onchip_entries: u64, seed: u64) -> Self {
        assert!(entries > 0 && onchip_entries > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut orams = Vec::new();
        let mut n = entries;
        while n > onchip_entries {
            let blocks = n.div_ceil(CHAIN_ENTRIES_PER_BLOCK);
            // 50% utilization: pick the smallest height whose slot count
            // covers twice the block count.
            let mut levels = 1u32;
            while ((1u64 << (levels + 1)) - 1) * 4 < blocks * 2 {
                levels += 1;
            }
            orams.push(MiniOram::new(levels, 4));
            n = blocks;
        }
        let top_blocks = n as usize;
        let top: Vec<u64> = (0..top_blocks)
            .map(|_| {
                if let Some(o) = orams.last() {
                    rng.gen_range(0..o.num_leaves())
                } else {
                    0
                }
            })
            .collect();
        FunctionalRecursiveMap {
            orams,
            top,
            rng,
            accesses: 0,
        }
    }

    /// Number of ORAM levels in the chain (0 = everything fits on chip).
    pub fn num_levels(&self) -> usize {
        self.orams.len()
    }

    /// Updates the label of data block `addr` to `new_label`, returning the
    /// previous label (0 for never-assigned) — one full Freecursive
    /// top-down read-modify-write walk.
    ///
    /// # Panics
    ///
    /// Panics if `addr` exceeds the covered range.
    pub fn update(&mut self, addr: u64, new_label: u64) -> u64 {
        self.accesses += 1;
        if self.orams.is_empty() {
            let slot = addr as usize;
            assert!(slot < self.top.len() * CHAIN_ENTRIES_PER_BLOCK as usize);
            // Degenerate: the "top map" is the whole map (one label per
            // entry, stored 16-per-row for uniformity).
            let old = self.top[slot];
            self.top[slot] = new_label;
            return old;
        }

        // Walk from the outermost (smallest) level down to level 0. At
        // level k the block index is addr / 16^(k+1).
        let k_top = self.orams.len() - 1;
        let top_idx = (addr / CHAIN_ENTRIES_PER_BLOCK.pow(k_top as u32 + 1)) as usize;
        assert!(top_idx < self.top.len(), "address beyond covered range");

        // The top map directly holds the leaf of the outermost block.
        let mut child_leaf = self.top[top_idx];
        let mut child_new_leaf = self.rng.gen_range(0..self.orams[k_top].num_leaves());
        self.top[top_idx] = child_new_leaf;

        for k in (0..=k_top).rev() {
            let block_idx = addr / CHAIN_ENTRIES_PER_BLOCK.pow(k as u32 + 1);
            let entry =
                ((addr / CHAIN_ENTRIES_PER_BLOCK.pow(k as u32)) % CHAIN_ENTRIES_PER_BLOCK) as usize;
            // What we write into this block's entry: for k > 0 it is the
            // next level's block's new leaf; for k == 0 the data label.
            let (write_value, grandchild_new_leaf) = if k == 0 {
                (new_label, 0)
            } else {
                let nl = self.rng.gen_range(0..self.orams[k - 1].num_leaves());
                (nl, nl)
            };
            let old = self.orams[k].access(block_idx, child_leaf, child_new_leaf, 0, |entries| {
                let old = entries[entry];
                entries[entry] = write_value;
                old
            });
            if k == 0 {
                return old;
            }
            // The next block's current leaf. A zero entry means the child
            // was never written: it exists nowhere, so any fetch path is
            // valid — draw a random one rather than hammering path 0
            // during cold start (which needlessly floods the stash).
            child_leaf = if old == 0 {
                self.rng.gen_range(0..self.orams[k - 1].num_leaves())
            } else {
                old
            };
            child_new_leaf = grandchild_new_leaf;
        }
        unreachable!("loop returns at level 0");
    }

    /// High-water mark of any level's stash (sanity probe).
    pub fn max_stash(&self) -> usize {
        self.orams.iter().map(|o| o.max_stash).max().unwrap_or(0)
    }

    /// Total accesses performed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_expected_depth() {
        // 2^20 entries / 16 = 2^16 blocks -> still > 4096 -> 2^12 blocks.
        let m = FunctionalRecursiveMap::new(1 << 20, 4096, 1);
        assert_eq!(m.num_levels(), 2);
        let m1 = FunctionalRecursiveMap::new(1 << 14, 4096, 1);
        assert_eq!(m1.num_levels(), 1);
        let m0 = FunctionalRecursiveMap::new(1 << 10, 4096, 1);
        assert_eq!(m0.num_levels(), 0);
    }

    #[test]
    fn stores_and_returns_previous_labels() {
        let mut m = FunctionalRecursiveMap::new(1 << 14, 1 << 10, 7);
        assert_eq!(m.update(100, 7), 0);
        assert_eq!(m.update(100, 9), 7);
        assert_eq!(m.update(100, 11), 9);
        // A different address in the same block is independent.
        assert_eq!(m.update(101, 5), 0);
        assert_eq!(m.update(100, 1), 11);
    }

    #[test]
    fn differential_against_flat_table() {
        use rand::Rng;
        let mut m = FunctionalRecursiveMap::new(1 << 16, 1 << 10, 13);
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..4000 {
            let addr = rng.gen_range(0..(1u64 << 16));
            let label = rng.gen_range(1..1_000_000u64);
            let expected = model.insert(addr, label).unwrap_or(0);
            let got = m.update(addr, label);
            assert_eq!(got, expected, "addr {addr} through the chain");
        }
        assert!(m.max_stash() < 200, "chain stash ran to {}", m.max_stash());
    }

    #[test]
    fn degenerate_chain_is_a_flat_table() {
        let mut m = FunctionalRecursiveMap::new(256, 4096, 3);
        assert_eq!(m.num_levels(), 0);
        assert_eq!(m.update(5, 42), 0);
        assert_eq!(m.update(5, 43), 42);
    }

    #[test]
    fn neighbouring_addresses_share_level0_blocks_but_not_entries() {
        let mut m = FunctionalRecursiveMap::new(1 << 14, 1 << 10, 5);
        for a in 0..16u64 {
            assert_eq!(m.update(a, 100 + a), 0);
        }
        for a in 0..16u64 {
            assert_eq!(m.update(a, 200 + a), 100 + a);
        }
    }
}
