//! ORAM blocks: header plus encrypted payload.

use serde::{Deserialize, Serialize};

use crate::types::{BlockAddr, Leaf};

/// A block header: program address, path id, and the two initialization
/// vectors used with AES counter-mode (IV1 for the header, IV2 for the
/// content, following Fletcher et al.).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockHeader {
    /// Program (logical) address of the block.
    pub addr: BlockAddr,
    /// The path this block is mapped to.
    pub leaf: Leaf,
    /// IV used to encrypt the header.
    pub iv1: u64,
    /// IV used to encrypt the data content.
    pub iv2: u64,
    /// Monotonic freshness counter, bumped on every content update.
    ///
    /// Real controllers already carry a monotonic counter per block (the
    /// AES-CTR IV); recovery uses it to pick the *newest* among multiple
    /// valid-looking copies — e.g. a committed primary and its backup when
    /// the random remap happened to re-draw the same leaf.
    pub seq: u64,
}

/// A real (non-dummy) ORAM block.
///
/// Dummy blocks are represented as empty slots ([`Option::None`] in a
/// bucket), mirroring the paper's special address `⊥`.
///
/// # Examples
///
/// ```
/// use psoram_core::{Block, BlockAddr, Leaf};
///
/// let b = Block::new(BlockAddr(7), Leaf(3), vec![1, 2, 3, 4]);
/// assert_eq!(b.header.addr, BlockAddr(7));
/// assert!(!b.is_backup);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Header carrying address, path id and IVs.
    pub header: BlockHeader,
    /// Functional payload (decrypted form while on chip).
    pub payload: Vec<u8>,
    /// `true` for a PS-ORAM backup (shadow) copy created in step ④. Backup
    /// blocks are ignored by stash lookups and auto-invalidate once the
    /// primary copy reaches its new path.
    pub is_backup: bool,
}

impl Block {
    /// Creates a block mapped to `leaf` holding `payload`.
    pub fn new(addr: BlockAddr, leaf: Leaf, payload: Vec<u8>) -> Self {
        Block {
            header: BlockHeader {
                addr,
                leaf,
                iv1: 0,
                iv2: 0,
                seq: 0,
            },
            payload,
            is_backup: false,
        }
    }

    /// Creates the backup (shadow) copy of `self`, pinned to `old_leaf`.
    ///
    /// The backup preserves the block's content *as fetched* so that a crash
    /// before the primary copy persists can recover the pre-access value
    /// (paper §4.2.1 step ④ and §4.3 Case 3).
    pub fn to_backup(&self, old_leaf: Leaf) -> Block {
        let mut b = self.clone();
        b.header.leaf = old_leaf;
        b.is_backup = true;
        b
    }

    /// The block's logical address.
    pub fn addr(&self) -> BlockAddr {
        self.header.addr
    }

    /// The path the block is currently mapped to.
    pub fn leaf(&self) -> Leaf {
        self.header.leaf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backup_preserves_payload_and_pins_old_leaf() {
        let b = Block::new(BlockAddr(1), Leaf(9), vec![5; 8]);
        let backup = b.to_backup(Leaf(2));
        assert!(backup.is_backup);
        assert_eq!(backup.leaf(), Leaf(2));
        assert_eq!(backup.payload, b.payload);
        assert_eq!(backup.addr(), b.addr());
        // The original is untouched.
        assert!(!b.is_backup);
        assert_eq!(b.leaf(), Leaf(9));
    }

    #[test]
    fn accessors() {
        let b = Block::new(BlockAddr(3), Leaf(4), vec![]);
        assert_eq!(b.addr(), BlockAddr(3));
        assert_eq!(b.leaf(), Leaf(4));
    }
}
