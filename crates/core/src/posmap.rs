//! Position maps: the main (persistable) PosMap and PS-ORAM's temporary
//! PosMap.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::types::{BlockAddr, Leaf, OramError};

/// SplitMix64 — deterministic initial leaf assignment.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// The main position map with separate *volatile* and *persisted* views.
///
/// Lookups see the volatile view. [`PosMap::set`] is a volatile update (a
/// plain SRAM write, as in the non-persistent `Baseline`); [`PosMap::persist`]
/// is a durable update (an NVM write, as performed when the PosMap WPQ
/// flushes, or on every update in `FullNVM`). [`PosMap::crash`] discards
/// volatile updates, restoring exactly what had been persisted — which for a
/// never-persisted map is the initial random mapping the paper's Case 1a
/// describes.
///
/// The map is stored as overlays over a deterministic pseudo-random initial
/// mapping, so even the paper-scale 2^25-entry PosMap costs memory only for
/// touched entries.
///
/// # Examples
///
/// ```
/// use psoram_core::{PosMap, BlockAddr, Leaf};
///
/// let mut pm = PosMap::new(64, 7);
/// let initial = pm.get(BlockAddr(3));
/// pm.set(BlockAddr(3), Leaf(9));          // volatile
/// assert_eq!(pm.get(BlockAddr(3)), Leaf(9));
/// pm.crash();                              // power failure
/// assert_eq!(pm.get(BlockAddr(3)), initial);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PosMap {
    num_leaves: u64,
    seed: u64,
    /// Volatile updates not yet persisted (lost on crash).
    volatile: HashMap<u64, u64>,
    /// Durable updates (survive crashes).
    persisted: HashMap<u64, u64>,
    persist_writes: u64,
}

impl PosMap {
    /// Creates a PosMap over `num_leaves` leaves with a deterministic
    /// initial mapping derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `num_leaves` is zero.
    pub fn new(num_leaves: u64, seed: u64) -> Self {
        assert!(num_leaves > 0, "PosMap needs at least one leaf");
        PosMap {
            num_leaves,
            seed,
            volatile: HashMap::new(),
            persisted: HashMap::new(),
            persist_writes: 0,
        }
    }

    fn initial(&self, addr: BlockAddr) -> Leaf {
        Leaf(splitmix64(self.seed ^ addr.0.wrapping_mul(0xD6E8FEB86659FD93)) % self.num_leaves)
    }

    /// Current (volatile-view) leaf for `addr`.
    pub fn get(&self, addr: BlockAddr) -> Leaf {
        if let Some(&l) = self.volatile.get(&addr.0) {
            Leaf(l)
        } else if let Some(&l) = self.persisted.get(&addr.0) {
            Leaf(l)
        } else {
            self.initial(addr)
        }
    }

    /// The leaf recovery would see after a crash right now.
    pub fn persisted_get(&self, addr: BlockAddr) -> Leaf {
        if let Some(&l) = self.persisted.get(&addr.0) {
            Leaf(l)
        } else {
            self.initial(addr)
        }
    }

    /// Volatile (SRAM) update — lost on crash.
    pub fn set(&mut self, addr: BlockAddr, leaf: Leaf) {
        self.volatile.insert(addr.0, leaf.0);
    }

    /// Durable (NVM) update — survives crashes and clears any volatile
    /// shadow of the same entry.
    pub fn persist(&mut self, addr: BlockAddr, leaf: Leaf) {
        self.volatile.remove(&addr.0);
        self.persisted.insert(addr.0, leaf.0);
        self.persist_writes += 1;
    }

    /// Models a power failure: volatile updates are lost.
    pub fn crash(&mut self) {
        self.volatile.clear();
    }

    /// Number of durable updates performed (NVM metadata write traffic).
    pub fn persist_writes(&self) -> u64 {
        self.persist_writes
    }

    /// All explicitly persisted `(addr, leaf)` entries, sorted — for
    /// deterministic retro-tagging and state digests. Initial-mapping
    /// entries (pure functions of the seed) are not stored and not listed.
    pub fn persisted_sorted(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.persisted.iter().map(|(&a, &l)| (a, l)).collect();
        v.sort_unstable();
        v
    }

    /// Number of leaves in the mapped tree.
    pub fn num_leaves(&self) -> u64 {
        self.num_leaves
    }

    /// Device-fault hook: corrupts the *persisted* entry of `addr` by
    /// XORing `entropy` into the stored leaf (mod leaf range), modelling
    /// bit rot in the durable PosMap region. Returns the damaged leaf.
    ///
    /// Only meaningful for entries that have been [`PosMap::persist`]ed;
    /// initial-mapping entries are pure functions of the seed (no stored
    /// media to damage), in which case an explicit wrong entry is stored.
    pub fn corrupt_persisted(&mut self, addr: BlockAddr, entropy: u64) -> Leaf {
        let current = self.persisted_get(addr).0;
        // Guarantee the stored value actually changes.
        let flip = (entropy % self.num_leaves.max(2)).max(1);
        let bad = (current ^ flip) % self.num_leaves;
        let bad = if bad == current {
            (current + 1) % self.num_leaves
        } else {
            bad
        };
        self.persisted.insert(addr.0, bad);
        Leaf(bad)
    }

    /// Device-fault hook: overwrites the *persisted* entry of `addr` with
    /// an arbitrary leaf, bypassing the write counter — the replay
    /// adversary re-serving a stale-but-well-formed entry behind the
    /// controller's back.
    pub fn overwrite_persisted(&mut self, addr: BlockAddr, leaf: Leaf) {
        self.persisted.insert(addr.0, leaf.0);
    }
}

/// PS-ORAM's **temporary PosMap** (`C_tPos`, 96 entries in Table 3).
///
/// Holds the *reassigned* path ids of accessed blocks until the blocks
/// themselves persist, so the main PosMap's durable entry is never
/// overwritten early (paper §4.1). Entries leave when the matching block is
/// evicted and its round commits; everything is lost on a crash, by design —
/// the main PosMap still points at a valid (possibly backup) copy.
///
/// # Examples
///
/// ```
/// use psoram_core::{TempPosMap, BlockAddr, Leaf};
///
/// let mut t = TempPosMap::new(96);
/// t.insert(BlockAddr(1), Leaf(5)).unwrap();
/// assert_eq!(t.get(BlockAddr(1)), Some(Leaf(5)));
/// assert_eq!(t.remove(BlockAddr(1)), Some(Leaf(5)));
/// assert!(t.is_empty());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TempPosMap {
    capacity: usize,
    entries: HashMap<u64, u64>,
    max_occupancy: usize,
}

impl TempPosMap {
    /// Creates an empty temporary PosMap bounded at `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "temporary PosMap capacity must be positive");
        TempPosMap {
            capacity,
            entries: HashMap::new(),
            max_occupancy: 0,
        }
    }

    /// Records the new (not yet persistent) leaf of `addr`.
    ///
    /// Re-inserting an existing address overwrites in place and never
    /// fails; fresh insertions respect the capacity.
    ///
    /// # Errors
    ///
    /// Returns [`OramError::TempPosMapOverflow`] when full.
    pub fn insert(&mut self, addr: BlockAddr, leaf: Leaf) -> Result<(), OramError> {
        if !self.entries.contains_key(&addr.0) && self.entries.len() >= self.capacity {
            return Err(OramError::TempPosMapOverflow {
                capacity: self.capacity,
            });
        }
        self.entries.insert(addr.0, leaf.0);
        self.max_occupancy = self.max_occupancy.max(self.entries.len());
        Ok(())
    }

    /// The pending leaf for `addr`, if one exists.
    pub fn get(&self, addr: BlockAddr) -> Option<Leaf> {
        self.entries.get(&addr.0).copied().map(Leaf)
    }

    /// Removes and returns the pending entry for `addr` (done when the
    /// block's eviction round commits).
    pub fn remove(&mut self, addr: BlockAddr) -> Option<Leaf> {
        self.entries.remove(&addr.0).map(Leaf)
    }

    /// Current number of pending entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// High-water mark of occupancy.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Models a power failure: all pending entries are lost.
    pub fn wipe(&mut self) {
        self.entries.clear();
    }

    /// The pending entries in deterministic (address-sorted) order —
    /// the canonical byte layout the temp-PosMap authentication seal
    /// covers.
    pub fn entries_sorted(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.entries.iter().map(|(&a, &l)| (a, l)).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_mapping_is_deterministic_and_in_range() {
        let a = PosMap::new(64, 1);
        let b = PosMap::new(64, 1);
        for i in 0..100 {
            let l = a.get(BlockAddr(i));
            assert_eq!(l, b.get(BlockAddr(i)));
            assert!(l.0 < 64);
        }
    }

    #[test]
    fn different_seeds_give_different_mappings() {
        let a = PosMap::new(1 << 20, 1);
        let b = PosMap::new(1 << 20, 2);
        let same = (0..64)
            .filter(|&i| a.get(BlockAddr(i)) == b.get(BlockAddr(i)))
            .count();
        assert!(
            same < 8,
            "mappings should be nearly disjoint, {same} collisions"
        );
    }

    #[test]
    fn volatile_updates_roll_back_on_crash() {
        let mut pm = PosMap::new(16, 3);
        let init = pm.get(BlockAddr(5));
        pm.set(BlockAddr(5), Leaf(1));
        pm.crash();
        assert_eq!(pm.get(BlockAddr(5)), init);
    }

    #[test]
    fn persisted_updates_survive_crash() {
        let mut pm = PosMap::new(16, 3);
        pm.persist(BlockAddr(5), Leaf(2));
        pm.set(BlockAddr(5), Leaf(9)); // volatile shadow
        assert_eq!(pm.get(BlockAddr(5)), Leaf(9));
        pm.crash();
        assert_eq!(pm.get(BlockAddr(5)), Leaf(2));
        assert_eq!(pm.persist_writes(), 1);
    }

    #[test]
    fn persist_clears_volatile_shadow() {
        let mut pm = PosMap::new(16, 3);
        pm.set(BlockAddr(1), Leaf(4));
        pm.persist(BlockAddr(1), Leaf(7));
        assert_eq!(pm.get(BlockAddr(1)), Leaf(7));
        pm.crash();
        assert_eq!(pm.get(BlockAddr(1)), Leaf(7));
    }

    #[test]
    fn persisted_get_ignores_volatile() {
        let mut pm = PosMap::new(16, 3);
        let init = pm.persisted_get(BlockAddr(2));
        pm.set(BlockAddr(2), Leaf(11));
        assert_eq!(pm.persisted_get(BlockAddr(2)), init);
    }

    #[test]
    fn initial_mapping_is_roughly_uniform() {
        let pm = PosMap::new(8, 42);
        let mut counts = [0usize; 8];
        for i in 0..8000 {
            counts[pm.get(BlockAddr(i)).0 as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (800..1200).contains(&c),
                "unbalanced initial mapping: {counts:?}"
            );
        }
    }

    #[test]
    fn temp_posmap_capacity_enforced_for_fresh_entries_only() {
        let mut t = TempPosMap::new(2);
        t.insert(BlockAddr(1), Leaf(1)).unwrap();
        t.insert(BlockAddr(2), Leaf(2)).unwrap();
        assert!(t.insert(BlockAddr(3), Leaf(3)).is_err());
        // Overwriting an existing entry is always allowed.
        t.insert(BlockAddr(1), Leaf(9)).unwrap();
        assert_eq!(t.get(BlockAddr(1)), Some(Leaf(9)));
    }

    #[test]
    fn corrupt_persisted_always_changes_the_recovered_leaf() {
        let mut pm = PosMap::new(16, 3);
        pm.persist(BlockAddr(5), Leaf(2));
        for entropy in 0..64 {
            let before = pm.persisted_get(BlockAddr(5));
            let bad = pm.corrupt_persisted(BlockAddr(5), entropy);
            assert_ne!(bad, before, "corruption must change the stored leaf");
            assert!(bad.0 < 16);
            assert_eq!(pm.persisted_get(BlockAddr(5)), bad);
        }
        // Never-persisted entries get an explicit wrong overlay too.
        let init = pm.persisted_get(BlockAddr(9));
        assert_ne!(pm.corrupt_persisted(BlockAddr(9), 0), init);
    }

    #[test]
    fn temp_entries_sorted_is_deterministic() {
        let mut t = TempPosMap::new(8);
        t.insert(BlockAddr(9), Leaf(1)).unwrap();
        t.insert(BlockAddr(2), Leaf(5)).unwrap();
        t.insert(BlockAddr(4), Leaf(3)).unwrap();
        assert_eq!(t.entries_sorted(), vec![(2, 5), (4, 3), (9, 1)]);
    }

    #[test]
    fn temp_posmap_remove_and_wipe() {
        let mut t = TempPosMap::new(4);
        t.insert(BlockAddr(1), Leaf(1)).unwrap();
        t.insert(BlockAddr(2), Leaf(2)).unwrap();
        assert_eq!(t.remove(BlockAddr(1)), Some(Leaf(1)));
        assert_eq!(t.remove(BlockAddr(1)), None);
        t.wipe();
        assert!(t.is_empty());
        assert_eq!(t.max_occupancy(), 2);
    }
}
