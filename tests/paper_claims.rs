//! End-to-end checks of the paper's headline numeric claims that our
//! models reproduce exactly (Table 2) or structurally (security §4.6).

use psoram::core::{BlockAddr, OramConfig, PathOram, ProtocolVariant};
use psoram::energy::DrainCostModel;

#[test]
fn table2_energy_numbers() {
    let m = DrainCostModel::paper_config(96);
    // PS-ORAM @96 entries: 76.530 uJ / 161.134 ns — exact under the model.
    let ps = m.ps_oram();
    assert!((ps.energy_uj() - 76.530).abs() < 0.05);
    assert!((ps.time_ns() - 161.134).abs() < 1.0);
    // eADR-ORAM is 4-5 orders of magnitude worse.
    assert!(m.energy_ratio_eadr_oram() > 2.5e4);
    assert!(m.time_ratio_eadr_oram() > 2.5e4);
}

#[test]
fn security_claims_hold_across_variants() {
    // Claims 1-3: the persistence add-ons change nothing observable.
    let observe = |variant| {
        let cfg = OramConfig::small_test();
        let mut oram = PathOram::new(cfg.clone(), variant, 31337);
        oram.enable_recording();
        for i in 0..1500u64 {
            // Adversarially chosen logical pattern: heavy skew.
            let addr = if i % 3 == 0 { 1 } else { i % 50 };
            oram.read(BlockAddr(addr)).unwrap();
        }
        let rec = oram.recorder().unwrap().clone();
        (
            rec.leaf_chi_square(cfg.num_leaves(), 16),
            rec.constant_shape(),
        )
    };
    for variant in [
        ProtocolVariant::Baseline,
        ProtocolVariant::PsOram,
        ProtocolVariant::NaivePsOram,
    ] {
        let (chi, constant) = observe(variant);
        assert!(constant, "{variant}: transfer counts must be constant");
        assert!(
            chi < 45.0,
            "{variant}: leaf distribution skewed, chi={chi:.1}"
        );
    }
}

#[test]
fn claim4_backup_blocks_invisible_after_crash() {
    // The backup block is only interpretable by re-reading its whole path:
    // on the bus it is one more encrypted block among Z*(L+1).
    let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 5);
    oram.enable_recording();
    for i in 0..200u64 {
        oram.write(BlockAddr(i % 20), vec![i as u8; 8]).unwrap();
    }
    assert!(oram.stats().backups_created > 0);
    assert!(oram.recorder().unwrap().constant_shape());
}

#[test]
fn claim5_small_wpq_reordering_keeps_shape() {
    let cfg = OramConfig::small_test().with_wpq_capacity(4, 4);
    let mut oram = PathOram::new(cfg, ProtocolVariant::PsOram, 5);
    oram.enable_recording();
    for i in 0..300u64 {
        oram.write(BlockAddr(i % 20), vec![i as u8; 8]).unwrap();
    }
    // Sub-batched evictions still write full paths: shape unchanged.
    assert!(oram.recorder().unwrap().constant_shape());
    assert!(oram.stats().eviction_batches > oram.stats().eviction_rounds);
}

#[test]
fn nvm_lifetime_wear_is_spread() {
    // "Friendly to NVM lifetime": writes spread across banks rather than
    // hammering one location.
    let mut oram = PathOram::new(OramConfig::small_test(), ProtocolVariant::PsOram, 5);
    for i in 0..400u64 {
        oram.write(BlockAddr(i % 30), vec![0; 8]).unwrap();
    }
    let wear = oram.nvm().wear_map();
    let flat: Vec<u64> = wear.into_iter().flatten().collect();
    let max = *flat.iter().max().unwrap() as f64;
    let min = *flat.iter().min().unwrap() as f64;
    assert!(min > 0.0, "all banks should see writes");
    assert!(max / min < 3.0, "wear imbalance too high: {max} vs {min}");
}
