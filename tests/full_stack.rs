//! Cross-crate integration: the full system stack reproduces the paper's
//! qualitative results (figure shapes) at test scale.

use psoram::core::ProtocolVariant;
use psoram::system::{System, SystemConfig};
use psoram::trace::SpecWorkload;

const RECORDS: usize = 12_000;
const WARMUP: usize = 3_000;

fn run(variant: ProtocolVariant, channels: usize, w: SpecWorkload) -> psoram::system::SimResult {
    let mut sys = System::new(SystemConfig::quick_test(variant, channels));
    sys.run_workload_with_warmup(w, WARMUP, RECORDS)
}

#[test]
fn figure5_shape_ps_oram_cheap_naive_and_fullnvm_expensive() {
    let w = SpecWorkload::Sphinx3;
    let base = run(ProtocolVariant::Baseline, 1, w);
    let ps = run(ProtocolVariant::PsOram, 1, w);
    let naive = run(ProtocolVariant::NaivePsOram, 1, w);
    let full = run(ProtocolVariant::FullNvm, 1, w);
    let stt = run(ProtocolVariant::FullNvmStt, 1, w);

    let t = |r: &psoram::system::SimResult| r.exec_cycles as f64 / base.exec_cycles as f64;
    assert!(t(&ps) < 1.15, "PS-ORAM overhead too large: {:.3}", t(&ps));
    assert!(
        t(&naive) > t(&ps) + 0.10,
        "Naive must clearly exceed PS-ORAM"
    );
    assert!(t(&full) > t(&stt), "PCM buffers slower than STT buffers");
    assert!(t(&stt) > t(&ps), "FullNVM(STT) slower than PS-ORAM");
}

#[test]
fn figure5b_shape_recursive_costs_and_ps_delta_small() {
    let w = SpecWorkload::Mcf;
    let base = run(ProtocolVariant::Baseline, 1, w);
    let rb = run(ProtocolVariant::RcrBaseline, 1, w);
    let rp = run(ProtocolVariant::RcrPsOram, 1, w);
    assert!(
        rb.exec_cycles > base.exec_cycles,
        "recursion must cost time"
    );
    let delta = rp.exec_cycles as f64 / rb.exec_cycles as f64;
    assert!(
        delta > 0.99 && delta < 1.2,
        "Rcr-PS over Rcr-Base out of band: {delta:.3}"
    );
}

#[test]
fn figure6_shape_traffic() {
    // A pointer-chasing workload: PLB hit rates stay low, so the recursive
    // read amplification is visible (streaming workloads mostly hit the
    // PLB, as Figure 6 itself shows per-workload variation).
    let w = SpecWorkload::Mcf;
    let base = run(ProtocolVariant::Baseline, 1, w);
    let ps = run(ProtocolVariant::PsOram, 1, w);
    let naive = run(ProtocolVariant::NaivePsOram, 1, w);
    let full = run(ProtocolVariant::FullNvm, 1, w);
    let rb = run(ProtocolVariant::RcrBaseline, 1, w);

    // Reads: recursion adds a lot; the others are unchanged.
    assert_eq!(base.total_reads(), ps.total_reads());
    assert!(rb.total_reads() as f64 > base.total_reads() as f64 * 1.3);

    // Writes: PS-ORAM adds only a few percent; Naive and FullNVM roughly
    // double.
    let wr = |r: &psoram::system::SimResult| r.total_writes() as f64 / base.total_writes() as f64;
    assert!(
        wr(&ps) < 1.10,
        "PS-ORAM write overhead too big: {:.3}",
        wr(&ps)
    );
    assert!(
        wr(&naive) > 1.5,
        "Naive writes should roughly double: {:.3}",
        wr(&naive)
    );
    assert!(
        wr(&full) > 1.5,
        "FullNVM writes should roughly double: {:.3}",
        wr(&full)
    );
}

#[test]
fn figure7_shape_multichannel_speedup_sublinear() {
    let w = SpecWorkload::Bzip2;
    let c1 = run(ProtocolVariant::PsOram, 1, w).exec_cycles as f64;
    let c2 = run(ProtocolVariant::PsOram, 2, w).exec_cycles as f64;
    let c4 = run(ProtocolVariant::PsOram, 4, w).exec_cycles as f64;
    assert!(c2 < c1, "2 channels must help");
    assert!(c4 < c2 * 1.02, "4 channels must not be slower than 2");
    // Sub-linear scaling, as the paper observes.
    assert!(c1 / c4 < 4.0);
}

#[test]
fn section51_oram_overhead_in_paper_range() {
    let w = SpecWorkload::Libquantum;
    let oram = run(ProtocolVariant::Baseline, 1, w);
    let mut plain_sys = System::new(SystemConfig {
        use_oram: false,
        ..SystemConfig::quick_test(ProtocolVariant::Baseline, 1)
    });
    let plain = plain_sys.run_workload_with_warmup(w, WARMUP, RECORDS);
    let overhead = oram.exec_cycles as f64 / plain.exec_cycles as f64;
    assert!(
        (2.0..40.0).contains(&overhead),
        "ORAM overhead {overhead:.1}x outside plausible band"
    );
}

#[test]
fn crash_mid_system_run_recovers() {
    let mut sys = System::new(SystemConfig::quick_test(ProtocolVariant::PsOram, 1));
    sys.run_workload(SpecWorkload::Gcc, 5_000);
    let oram = sys.oram_mut().expect("oram backend");
    oram.crash_now();
    assert!(oram.recover().consistent);
    oram.verify_contents(true)
        .expect("committed data must survive a system-level crash");
}

#[test]
fn all_variants_complete_and_report() {
    for variant in ProtocolVariant::all() {
        let r = run(variant, 1, SpecWorkload::Namd);
        assert!(r.exec_cycles > 0, "{variant}");
        assert!(r.llc_misses > 0, "{variant}");
        assert_eq!(r.variant, variant.label());
    }
}
